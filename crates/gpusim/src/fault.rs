//! Deterministic, seedable fault injection for the simulated device.
//!
//! A [`FaultPlan`] describes the transient failures a real CUDA pipeline
//! must tolerate, mapped onto this simulator's launch model:
//!
//! * **launch failures** — the driver rejects or loses a kernel launch
//!   before any device work happens ([`SimError::LaunchFailed`]);
//! * **transient device-memory corruptions** — a detected in-flight
//!   corruption (parity/ECC-style) kills the launch partway through
//!   ([`SimError::MemFault`]); detection precedes write-back, so the
//!   corrupted value itself never commits, but the launch's earlier
//!   writes persist (partial execution);
//! * **kernel hangs** — the kernel stops making progress and the
//!   instruction-budget watchdog kills it ([`SimError::WatchdogTimeout`]),
//!   again leaving partial writes behind;
//! * **launch-overhead spikes** — the launch completes but its fixed
//!   overhead is multiplied (driver hiccup, queue contention); billed
//!   truthfully through the timing model and recorded in
//!   [`LaunchStats::fault_overhead_cycles`].
//!
//! Faults are drawn **per launch attempt** from a hash of
//! `(seed, attempt ordinal)`, so a given plan is fully deterministic and
//! a retried launch (a later ordinal) gets a fresh, independent draw —
//! exactly the property bounded retry-with-relaunch needs. Explicit
//! faults can also be pinned to specific attempt ordinals with
//! [`FaultPlan::at_launch`], which tests use to script scenarios.
//!
//! [`SimError::LaunchFailed`]: crate::SimError::LaunchFailed
//! [`SimError::MemFault`]: crate::SimError::MemFault
//! [`SimError::WatchdogTimeout`]: crate::SimError::WatchdogTimeout
//! [`LaunchStats::fault_overhead_cycles`]: crate::LaunchStats

use std::collections::BTreeMap;

use crate::timing::TimingModel;
use crate::SimError;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The launch is rejected before any device work happens.
    LaunchFailure,
    /// A detected transient memory corruption aborts the launch after a
    /// prefix of its work (partial writes persist).
    MemCorruption,
    /// The kernel hangs; the watchdog kills it after a prefix of its
    /// work (partial writes persist).
    Hang,
    /// The launch completes, but its fixed launch overhead is multiplied
    /// by this factor.
    OverheadSpike {
        /// Multiplier applied to the launch-overhead cycles (> 1.0).
        factor: f64,
    },
}

/// A deterministic, seedable description of which launch attempts fault
/// and how. All rates are per-mille (probability × 1000) per attempt;
/// at most one fault fires per attempt (rates partition one uniform
/// draw, in the order launch failure → memory corruption → hang →
/// overhead spike).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    launch_failure_permille: u32,
    mem_corruption_permille: u32,
    hang_permille: u32,
    overhead_spike_permille: u32,
    overhead_spike_factor: f64,
    pinned: BTreeMap<u64, FaultKind>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            overhead_spike_factor: 4.0,
            ..FaultPlan::default()
        }
    }

    /// Adds random launch failures at `permille`/1000 per attempt.
    #[must_use]
    pub fn with_launch_failures(mut self, permille: u32) -> FaultPlan {
        self.launch_failure_permille = permille.min(1000);
        self
    }

    /// Adds random detected memory corruptions at `permille`/1000 per
    /// attempt.
    #[must_use]
    pub fn with_mem_corruptions(mut self, permille: u32) -> FaultPlan {
        self.mem_corruption_permille = permille.min(1000);
        self
    }

    /// Adds random kernel hangs at `permille`/1000 per attempt.
    #[must_use]
    pub fn with_hangs(mut self, permille: u32) -> FaultPlan {
        self.hang_permille = permille.min(1000);
        self
    }

    /// Adds random launch-overhead spikes at `permille`/1000 per attempt,
    /// multiplying the fixed overhead by `factor`.
    #[must_use]
    pub fn with_overhead_spikes(mut self, permille: u32, factor: f64) -> FaultPlan {
        self.overhead_spike_permille = permille.min(1000);
        self.overhead_spike_factor = factor.max(1.0);
        self
    }

    /// Pins a specific fault to a specific launch-attempt ordinal
    /// (0-based, counted across the device's lifetime including retried
    /// attempts). Pinned faults override the random draw.
    #[must_use]
    pub fn at_launch(mut self, attempt: u64, fault: FaultKind) -> FaultPlan {
        self.pinned.insert(attempt, fault);
        self
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault (if any) this plan injects into launch attempt
    /// `attempt`. Pure: the same plan and ordinal always agree.
    #[must_use]
    pub fn draw(&self, attempt: u64) -> Option<FaultKind> {
        if let Some(&f) = self.pinned.get(&attempt) {
            return Some(f);
        }
        let r = (hash2(self.seed, attempt) % 1000) as u32;
        let mut edge = self.launch_failure_permille;
        if r < edge {
            return Some(FaultKind::LaunchFailure);
        }
        edge += self.mem_corruption_permille;
        if r < edge {
            return Some(FaultKind::MemCorruption);
        }
        edge += self.hang_permille;
        if r < edge {
            return Some(FaultKind::Hang);
        }
        edge += self.overhead_spike_permille;
        if r < edge {
            return Some(FaultKind::OverheadSpike {
                factor: self.overhead_spike_factor,
            });
        }
        None
    }

    /// Combined per-attempt probability (in per-mille) of a *transient*
    /// fault — one that aborts the attempt and forces a retry: launch
    /// failure, detected memory corruption, or watchdog-killed hang.
    /// Overhead spikes complete the launch and are excluded. Pinned
    /// faults are a test scripting device and do not enter the rate.
    #[must_use]
    pub fn transient_permille(&self) -> u32 {
        (self.launch_failure_permille + self.mem_corruption_permille + self.hang_permille).min(1000)
    }

    /// Expected number of failed attempts before a launch succeeds, from
    /// the geometric distribution over the transient rate: `p / (1 − p)`.
    /// A plan that faults every attempt (1000‰) would never converge; the
    /// rate is capped just below certainty so the expectation stays a
    /// finite (if enormous) planning number.
    #[must_use]
    pub fn expected_failed_attempts(&self) -> f64 {
        let p = (f64::from(self.transient_permille()) / 1000.0).min(0.999);
        p / (1.0 - p)
    }

    /// Expected retry overhead cycles per launch: the expected number of
    /// failed attempts times the mean truthful cost of one failed attempt
    /// ([`TimingModel::failed_attempt_cycles`]), weighted by this plan's
    /// per-kind rates. `watchdog_budget` is the instruction budget a hung
    /// kernel burns before the watchdog kills it
    /// ([`crate::Gpu::watchdog_budget`]). This is the quantity a
    /// fault-aware scheduler folds into its ResMII bound.
    #[must_use]
    pub fn expected_retry_cycles(&self, timing: &TimingModel, watchdog_budget: u64) -> f64 {
        let lf = f64::from(self.launch_failure_permille);
        let mc = f64::from(self.mem_corruption_permille);
        let hg = f64::from(self.hang_permille);
        let total = lf + mc + hg;
        if total <= 0.0 {
            return 0.0;
        }
        let c_lf = timing.failed_attempt_cycles(&SimError::LaunchFailed { launch: 0 });
        let c_mc = timing.failed_attempt_cycles(&SimError::MemFault { addr: 0, launch: 0 });
        let c_hg = timing.failed_attempt_cycles(&SimError::WatchdogTimeout {
            budget: watchdog_budget,
            launch: 0,
        });
        let mean = (lf * c_lf + mc * c_mc + hg * c_hg) / total;
        self.expected_failed_attempts() * mean
    }

    /// Deterministic per-attempt instruction prefix after which a
    /// [`FaultKind::MemCorruption`] or [`FaultKind::Hang`] strikes:
    /// varied so faults land at different points of the kernel, but
    /// always small enough to leave the launch visibly incomplete.
    #[must_use]
    pub fn trip_prefix_insts(&self, attempt: u64) -> u64 {
        16 + hash2(self.seed ^ 0x5117_ab1e, attempt) % 240
    }
}

/// A device-grain fault: strikes a whole device (or its router link)
/// rather than one launch attempt. Where [`FaultKind`] models the
/// transient failures a retrying executor absorbs *inside* a device,
/// these model the failures a fleet must route *around*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeviceFaultKind {
    /// The device is lost permanently: every in-flight job must fail
    /// over to a healthy replica (checkpoint shipping), and the router
    /// must stop placing work on it.
    Loss,
    /// The device browns out to `total_sms` usable SMs, forcing a
    /// partition recut; optionally heals back to full capacity after
    /// `heal_secs`.
    Brownout {
        /// Usable SMs while browned out.
        total_sms: u32,
        /// Seconds until capacity is restored (`None` = no heal).
        heal_secs: Option<f64>,
    },
    /// The router↔device link partitions: the device keeps running what
    /// it has, but the router cannot place new work on it until the
    /// partition heals after `heal_secs`.
    LinkPartition {
        /// Seconds until the link heals.
        heal_secs: f64,
    },
}

/// One timed device-grain fault.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceFaultEvent {
    /// Virtual time at which the fault strikes.
    pub at_secs: f64,
    /// The struck device.
    pub device: crate::DeviceId,
    /// What happens to it.
    pub kind: DeviceFaultKind,
}

/// A deterministic schedule of device-grain faults, kept sorted by
/// `(at_secs, device)` so a fleet event loop consumes it in a total
/// order and same-plan runs replay bit-identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceFaultPlan {
    events: Vec<DeviceFaultEvent>,
}

impl DeviceFaultPlan {
    /// An empty plan (no device faults).
    #[must_use]
    pub fn new() -> DeviceFaultPlan {
        DeviceFaultPlan::default()
    }

    /// Adds a whole-device loss at `at_secs`.
    #[must_use]
    pub fn with_loss(mut self, device: crate::DeviceId, at_secs: f64) -> DeviceFaultPlan {
        self.push(DeviceFaultEvent {
            at_secs,
            device,
            kind: DeviceFaultKind::Loss,
        });
        self
    }

    /// Adds a device brownout to `total_sms` SMs at `at_secs`, healing
    /// after `heal_secs` when given.
    #[must_use]
    pub fn with_brownout(
        mut self,
        device: crate::DeviceId,
        at_secs: f64,
        total_sms: u32,
        heal_secs: Option<f64>,
    ) -> DeviceFaultPlan {
        self.push(DeviceFaultEvent {
            at_secs,
            device,
            kind: DeviceFaultKind::Brownout {
                total_sms,
                heal_secs,
            },
        });
        self
    }

    /// Adds a router↔device link partition at `at_secs` that heals
    /// after `heal_secs`.
    #[must_use]
    pub fn with_partition(
        mut self,
        device: crate::DeviceId,
        at_secs: f64,
        heal_secs: f64,
    ) -> DeviceFaultPlan {
        self.push(DeviceFaultEvent {
            at_secs,
            device,
            kind: DeviceFaultKind::LinkPartition { heal_secs },
        });
        self
    }

    /// Inserts an event, maintaining the `(at_secs, device)` sort.
    pub fn push(&mut self, ev: DeviceFaultEvent) {
        let at = self
            .events
            .partition_point(|e| (e.at_secs, e.device) <= (ev.at_secs, ev.device));
        self.events.insert(at, ev);
    }

    /// The events in `(at_secs, device)` order.
    #[must_use]
    pub fn events(&self) -> &[DeviceFaultEvent] {
        &self.events
    }

    /// Whether the plan schedules no faults.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// splitmix64 over a seed/ordinal pair.
fn hash2(seed: u64, x: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(x)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic() {
        let p = FaultPlan::new(42)
            .with_launch_failures(100)
            .with_mem_corruptions(100)
            .with_hangs(100)
            .with_overhead_spikes(100, 8.0);
        let a: Vec<_> = (0..512).map(|i| p.draw(i)).collect();
        let b: Vec<_> = (0..512).map(|i| p.draw(i)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn rates_partition_one_draw() {
        // 250‰ each: every attempt faults, categories roughly balanced.
        let p = FaultPlan::new(7)
            .with_launch_failures(250)
            .with_mem_corruptions(250)
            .with_hangs(250)
            .with_overhead_spikes(250, 2.0);
        let draws: Vec<_> = (0..4000).map(|i| p.draw(i)).collect();
        assert!(draws.iter().all(Option::is_some));
        let count = |k: fn(&FaultKind) -> bool| draws.iter().flatten().filter(|f| k(f)).count();
        let lf = count(|f| matches!(f, FaultKind::LaunchFailure));
        let mc = count(|f| matches!(f, FaultKind::MemCorruption));
        let hg = count(|f| matches!(f, FaultKind::Hang));
        let os = count(|f| matches!(f, FaultKind::OverheadSpike { .. }));
        for n in [lf, mc, hg, os] {
            assert!((700..1300).contains(&n), "unbalanced category: {n}/4000");
        }
    }

    #[test]
    fn zero_rates_never_fault() {
        let p = FaultPlan::new(3);
        assert!((0..4096).all(|i| p.draw(i).is_none()));
    }

    #[test]
    fn pinned_faults_override() {
        let p = FaultPlan::new(3).at_launch(5, FaultKind::Hang);
        assert_eq!(p.draw(5), Some(FaultKind::Hang));
        assert_eq!(p.draw(4), None);
    }

    #[test]
    fn seeds_decorrelate() {
        let a = FaultPlan::new(1).with_launch_failures(500);
        let b = FaultPlan::new(2).with_launch_failures(500);
        let da: Vec<_> = (0..256).map(|i| a.draw(i).is_some()).collect();
        let db: Vec<_> = (0..256).map(|i| b.draw(i).is_some()).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn expected_failed_attempts_follows_the_geometric_mean() {
        let p = FaultPlan::new(1).with_launch_failures(200).with_hangs(50);
        assert_eq!(p.transient_permille(), 250);
        // p = 0.25 → E = 1/3.
        assert!((p.expected_failed_attempts() - 0.25 / 0.75).abs() < 1e-12);
        // Spikes are not transient: they complete the launch.
        let spiky = FaultPlan::new(1).with_overhead_spikes(500, 4.0);
        assert_eq!(spiky.transient_permille(), 0);
        assert_eq!(spiky.expected_failed_attempts(), 0.0);
        // Certain failure stays a finite planning number.
        let certain = FaultPlan::new(1).with_launch_failures(1000);
        assert!(certain.expected_failed_attempts().is_finite());
    }

    #[test]
    fn expected_retry_cycles_weight_the_per_kind_costs() {
        let timing = TimingModel::gts512();
        let budget = timing.watchdog_budget_insts();
        let lf_only = FaultPlan::new(1).with_launch_failures(100);
        // p = 0.1 → E ≈ 0.1111 failed attempts, each one launch overhead.
        let expect = (0.1 / 0.9) * timing.launch_overhead_cycles;
        assert!((lf_only.expected_retry_cycles(&timing, budget) - expect).abs() < 1e-6);
        // Hangs are far costlier per attempt, so at the same rate the
        // expected overhead must be far larger.
        let hg_only = FaultPlan::new(1).with_hangs(100);
        assert!(
            hg_only.expected_retry_cycles(&timing, budget)
                > 100.0 * lf_only.expected_retry_cycles(&timing, budget)
        );
        assert_eq!(
            FaultPlan::new(1).expected_retry_cycles(&timing, budget),
            0.0
        );
    }

    #[test]
    fn device_fault_plan_keeps_events_in_time_device_order() {
        use crate::DeviceId;
        let plan = DeviceFaultPlan::new()
            .with_loss(DeviceId(3), 2.0)
            .with_partition(DeviceId(1), 0.5, 1.0)
            .with_brownout(DeviceId(2), 2.0, 8, Some(3.0))
            .with_loss(DeviceId(0), 0.5);
        let order: Vec<(f64, u32)> = plan
            .events()
            .iter()
            .map(|e| (e.at_secs, e.device.index()))
            .collect();
        assert_eq!(order, vec![(0.5, 0), (0.5, 1), (2.0, 2), (2.0, 3)]);
        assert!(!plan.is_empty());
        assert!(DeviceFaultPlan::new().is_empty());
    }

    #[test]
    fn trip_prefix_is_small_and_varied() {
        let p = FaultPlan::new(9);
        let prefixes: Vec<u64> = (0..64).map(|i| p.trip_prefix_insts(i)).collect();
        assert!(prefixes.iter().all(|&n| (16..256).contains(&n)));
        assert!(
            prefixes
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len()
                > 8
        );
    }
}
