//! Occupancy arithmetic: how many blocks and warps an SM can keep
//! resident under the register, shared-memory, thread, and block limits.
//!
//! The paper's profiling phase searches thread counts precisely because
//! occupancy (resident warps) controls latency hiding while the register
//! file caps it: "Higher levels of SMT do not automatically translate to
//! higher performance, since the number of registers in each
//! multiprocessor is fixed."

use crate::config::DeviceConfig;

/// Residency of one block shape on one SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occupancy {
    /// Blocks simultaneously resident on the SM.
    pub blocks: u32,
    /// Warps simultaneously resident (blocks × warps per block).
    pub warps: u32,
    /// Threads simultaneously resident.
    pub threads: u32,
    /// Which resource binds: the limiter.
    pub limited_by: Limit,
}

/// The resource that caps residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limit {
    /// The per-SM register file.
    Registers,
    /// Shared memory.
    SharedMemory,
    /// The resident-thread ceiling.
    Threads,
    /// The resident-block ceiling.
    Blocks,
    /// The block shape is infeasible on this device (zero residency).
    Infeasible,
}

/// Computes residency for a block of `threads_per_block` threads, each
/// holding `regs_per_thread` registers, with `shared_bytes_per_block` of
/// shared memory.
///
/// # Examples
///
/// ```
/// use gpusim::{occupancy, DeviceConfig};
/// // 512 threads x 16 registers = the whole register file: one block.
/// let o = occupancy::occupancy(&DeviceConfig::gts512(), 512, 16, 0);
/// assert_eq!(o.blocks, 1);
/// assert_eq!(o.threads, 512);
/// // 64 registers per thread: a 512-thread block cannot launch at all.
/// let o = occupancy::occupancy(&DeviceConfig::gts512(), 512, 64, 0);
/// assert_eq!(o.blocks, 0);
/// ```
#[must_use]
pub fn occupancy(
    config: &DeviceConfig,
    threads_per_block: u32,
    regs_per_thread: u32,
    shared_bytes_per_block: u32,
) -> Occupancy {
    if threads_per_block == 0 || threads_per_block > config.max_threads_per_block {
        return Occupancy {
            blocks: 0,
            warps: 0,
            threads: 0,
            limited_by: Limit::Infeasible,
        };
    }
    let by_regs = config
        .registers_per_sm
        .checked_div(regs_per_thread * threads_per_block)
        .unwrap_or(u32::MAX);
    let by_shared = config
        .shared_mem_per_sm
        .checked_div(shared_bytes_per_block)
        .unwrap_or(u32::MAX);
    let by_threads = config.max_threads_per_sm / threads_per_block;
    let by_blocks = config.max_blocks_per_sm;

    let blocks = by_regs.min(by_shared).min(by_threads).min(by_blocks);
    let limited_by = if blocks == 0 {
        Limit::Infeasible
    } else if blocks == by_regs {
        Limit::Registers
    } else if blocks == by_shared {
        Limit::SharedMemory
    } else if blocks == by_threads {
        Limit::Threads
    } else {
        Limit::Blocks
    };
    Occupancy {
        blocks,
        warps: blocks * threads_per_block.div_ceil(config.warp_size),
        threads: blocks * threads_per_block,
        limited_by,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gts() -> DeviceConfig {
        DeviceConfig::gts512()
    }

    #[test]
    fn paper_register_wall() {
        // The paper's grid: regs x threads <= 8192 is the feasibility line.
        for (regs, threads, feasible) in [
            (16u32, 512u32, true),
            (20, 384, true),
            (32, 256, true),
            (64, 128, true),
            (64, 512, false),
            (32, 384, false),
            (20, 512, false),
        ] {
            let o = occupancy(&gts(), threads, regs, 0);
            assert_eq!(
                o.blocks > 0,
                feasible,
                "({regs} regs, {threads} threads) expected feasible={feasible}"
            );
        }
    }

    #[test]
    fn thread_ceiling_limits_small_blocks() {
        // 128-thread blocks with few registers: capped by 768 threads/SM
        // (6 blocks), not by the 8-block ceiling.
        let o = occupancy(&gts(), 128, 8, 0);
        assert_eq!(o.blocks, 6);
        assert_eq!(o.threads, 768);
        assert_eq!(o.limited_by, Limit::Threads);
    }

    #[test]
    fn block_ceiling_limits_tiny_blocks() {
        let o = occupancy(&gts(), 64, 4, 0);
        assert_eq!(o.blocks, 8);
        assert_eq!(o.limited_by, Limit::Blocks);
    }

    #[test]
    fn shared_memory_limits() {
        // 9 KB of shared per block: only one block fits in 16 KB.
        let o = occupancy(&gts(), 128, 8, 9 * 1024);
        assert_eq!(o.blocks, 1);
        assert_eq!(o.limited_by, Limit::SharedMemory);
    }

    #[test]
    fn oversized_block_is_infeasible() {
        let o = occupancy(&gts(), 1024, 8, 0);
        assert_eq!(o.blocks, 0);
        assert_eq!(o.limited_by, Limit::Infeasible);
    }

    #[test]
    fn warps_round_up_partial_blocks() {
        let o = occupancy(&gts(), 48, 8, 0); // 1.5 warps per block
        assert_eq!(o.warps, o.blocks * 2);
    }
}
