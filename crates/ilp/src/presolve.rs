//! Presolve: bound tightening from singleton constraints.
//!
//! Constraints mentioning a single variable are really bounds in disguise;
//! folding them into the variable's bounds before branch-and-bound shrinks
//! every LP relaxation and often proves infeasibility outright. Scheduling
//! formulations produce many of these (symmetry pins, stateful
//! co-location equalities against fixed variables, wraparound limits).

use crate::model::{Model, Sense, VarTy};

/// The outcome of presolving a model.
#[derive(Debug, Clone)]
pub enum Presolved {
    /// A reduced model (singleton constraints folded into bounds) plus the
    /// number of constraints eliminated.
    Reduced(Model, usize),
    /// Presolve proved the model infeasible (conflicting bounds).
    Infeasible,
}

/// Applies singleton-constraint bound tightening.
///
/// Integer variables additionally get their bounds rounded inward
/// (`lo.ceil()`, `hi.floor()`), which can also prove infeasibility.
#[must_use]
pub fn presolve(model: &Model) -> Presolved {
    let mut m = model.clone();
    let mut removed = 0usize;
    let mut kept = Vec::with_capacity(m.cons.len());

    for c in std::mem::take(&mut m.cons) {
        let terms = c.expr.canonical_terms(m.vars.len());
        let nonzero: Vec<usize> = (0..terms.len()).filter(|&i| terms[i] != 0.0).collect();
        if nonzero.len() != 1 {
            kept.push(c);
            continue;
        }
        let i = nonzero[0];
        let a = terms[i];
        let rhs = (c.rhs - c.expr.constant) / a;
        let v = &mut m.vars[i];
        // a*x <= b  =>  x <= b/a (a > 0) or x >= b/a (a < 0); Ge mirrors.
        match (c.sense, a > 0.0) {
            (Sense::Le, true) | (Sense::Ge, false) => v.hi = v.hi.min(rhs),
            (Sense::Le, false) | (Sense::Ge, true) => v.lo = v.lo.max(rhs),
            (Sense::Eq, _) => {
                v.lo = v.lo.max(rhs);
                v.hi = v.hi.min(rhs);
            }
        }
        removed += 1;
    }
    m.cons = kept;

    // Integrality rounding + feasibility check.
    for v in &mut m.vars {
        if v.ty != VarTy::Continuous {
            v.lo = v.lo.ceil();
            v.hi = v.hi.floor();
        }
        if v.lo > v.hi + 1e-9 {
            return Presolved::Infeasible;
        }
    }
    Presolved::Reduced(m, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve, SolveOptions, SolveOutcome};

    #[test]
    fn singleton_constraints_become_bounds() {
        let mut m = Model::new();
        let x = m.int_var("x", 0.0, 100.0);
        m.constraint(m.expr().term(x, 2.0), Sense::Le, 13.0); // x <= 6.5
        m.constraint(m.expr().term(x, -1.0), Sense::Le, -3.0); // x >= 3
        match presolve(&m) {
            Presolved::Reduced(r, removed) => {
                assert_eq!(removed, 2);
                assert_eq!(r.num_constraints(), 0);
                let (lo, hi) = r.bounds(x);
                assert_eq!(lo, 3.0);
                assert_eq!(hi, 6.0); // floored from 6.5 (integer variable)
            }
            Presolved::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn conflicting_singletons_prove_infeasibility() {
        let mut m = Model::new();
        let x = m.int_var("x", 0.0, 10.0);
        m.constraint(m.expr().term(x, 1.0), Sense::Ge, 7.2);
        m.constraint(m.expr().term(x, 1.0), Sense::Le, 7.1);
        assert!(matches!(presolve(&m), Presolved::Infeasible));
    }

    #[test]
    fn equality_singleton_pins_variable() {
        let mut m = Model::new();
        let x = m.cont_var("x", 0.0, 10.0);
        m.constraint(m.expr().term(x, 4.0), Sense::Eq, 10.0);
        match presolve(&m) {
            Presolved::Reduced(r, _) => {
                assert_eq!(r.bounds(x), (2.5, 2.5));
            }
            Presolved::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn multi_variable_constraints_are_kept() {
        let mut m = Model::new();
        let x = m.binary_var("x");
        let y = m.binary_var("y");
        m.constraint(m.expr().term(x, 1.0).term(y, 1.0), Sense::Le, 1.0);
        match presolve(&m) {
            Presolved::Reduced(r, removed) => {
                assert_eq!(removed, 0);
                assert_eq!(r.num_constraints(), 1);
            }
            Presolved::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn presolved_solutions_match_unpresolved() {
        // max x + y s.t. 2x <= 7, x + y <= 5, y <= 4.2 (singletons mixed in).
        let mut m = Model::new();
        let x = m.int_var("x", 0.0, 100.0);
        let y = m.int_var("y", 0.0, 100.0);
        m.constraint(m.expr().term(x, 2.0), Sense::Le, 7.0);
        m.constraint(m.expr().term(x, 1.0).term(y, 1.0), Sense::Le, 5.0);
        m.constraint(m.expr().term(y, 1.0), Sense::Le, 4.2);
        m.maximize(m.expr().term(x, 1.0).term(y, 1.0));
        let direct = match solve(&m, &SolveOptions::default()) {
            SolveOutcome::Optimal(s) => s.objective,
            other => panic!("{other:?}"),
        };
        let reduced = match presolve(&m) {
            Presolved::Reduced(r, _) => match solve(&r, &SolveOptions::default()) {
                SolveOutcome::Optimal(s) => s.objective,
                other => panic!("{other:?}"),
            },
            Presolved::Infeasible => panic!("feasible model"),
        };
        assert_eq!(direct, reduced);
        assert_eq!(direct, 5.0);
    }
}
