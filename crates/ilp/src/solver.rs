//! Branch and bound over the LP relaxation.

use std::time::{Duration, Instant};

use crate::model::{Direction, Model, Sense, VarId, VarTy};
use crate::simplex::{self, LpResult, StandardLp};

/// Knobs for [`solve`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOptions {
    /// Wall-clock budget; on expiry the best incumbent (if any) is
    /// returned as [`SolveOutcome::Feasible`]. The paper allots CPLEX 20
    /// seconds per candidate initiation interval.
    pub time_budget: Duration,
    /// Node budget (branch-and-bound tree size cap).
    pub max_nodes: u64,
    /// Tolerance for calling an LP value integral.
    pub int_tol: f64,
    /// Stop at the first verified integral solution (the paper's ILP is a
    /// constraint problem, not an optimization).
    pub feasibility_only: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            time_budget: Duration::from_secs(20),
            max_nodes: 1_000_000,
            int_tol: 1e-6,
            feasibility_only: false,
        }
    }
}

/// A verified assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Value per variable, indexed by [`VarId`].
    pub values: Vec<f64>,
    /// Objective value in the model's own direction (0 for pure
    /// feasibility models).
    pub objective: f64,
}

impl Solution {
    /// The value assigned to `var`.
    #[must_use]
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.0]
    }
}

/// What the solver concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveOutcome {
    /// Proven optimal (or, in feasibility mode, the first verified
    /// feasible point).
    Optimal(Solution),
    /// A verified feasible point, but the budget expired before proving
    /// optimality.
    Feasible(Solution),
    /// No feasible assignment exists.
    Infeasible,
    /// The objective is unbounded.
    Unbounded,
    /// The budget expired with no feasible point found.
    TimedOut,
}

/// Search statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveStats {
    /// Branch-and-bound nodes processed.
    pub nodes: u64,
    /// LP relaxations solved.
    pub lp_solves: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// Solves the model; see [`solve_with_stats`] for search statistics.
#[must_use]
pub fn solve(model: &Model, opts: &SolveOptions) -> SolveOutcome {
    solve_with_stats(model, opts).0
}

/// Solves the model, also returning search statistics.
#[must_use]
pub fn solve_with_stats(model: &Model, opts: &SolveOptions) -> (SolveOutcome, SolveStats) {
    let start = Instant::now();
    let mut stats = SolveStats::default();

    // Fold singleton constraints into bounds before searching.
    let model = match crate::presolve::presolve(model) {
        crate::presolve::Presolved::Infeasible => {
            stats.elapsed = start.elapsed();
            return (SolveOutcome::Infeasible, stats);
        }
        crate::presolve::Presolved::Reduced(m, _) => m,
    };
    let model = &model;

    // Internal form is minimization.
    let maximize = model.direction == Some(Direction::Maximize);
    let obj_terms = model.objective.canonical_terms(model.num_vars());
    let obj: Vec<f64> = if maximize {
        obj_terms.iter().map(|&c| -c).collect()
    } else {
        obj_terms
    };

    let root = Node {
        lo: model.vars.iter().map(|v| v.lo).collect(),
        hi: model.vars.iter().map(|v| v.hi).collect(),
        depth: 0,
    };
    let mut stack = vec![root];
    let mut incumbent: Option<(Vec<f64>, f64)> = None; // (values, min-form obj)
    let mut unbounded = false;
    let mut exhausted = true;

    while let Some(node) = stack.pop() {
        if start.elapsed() > opts.time_budget || stats.nodes >= opts.max_nodes {
            exhausted = false;
            break;
        }
        stats.nodes += 1;

        if node.lo.iter().zip(&node.hi).any(|(&l, &h)| l > h) {
            continue;
        }

        let lp = build_standard(model, &obj, &node);
        stats.lp_solves += 1;
        let (x, lp_obj) = match simplex::run(&lp) {
            LpResult::Infeasible => continue,
            LpResult::Unbounded => {
                if model.num_integer_vars() == 0 || node.depth == 0 {
                    unbounded = true;
                    break;
                }
                continue;
            }
            LpResult::Optimal { x, obj } => (x, obj),
        };
        // Un-shift to model space.
        let values: Vec<f64> = x.iter().zip(&node.lo).map(|(&v, &l)| v + l).collect();
        let lp_obj = lp_obj + obj.iter().zip(&node.lo).map(|(&c, &l)| c * l).sum::<f64>();

        if let Some((_, best)) = &incumbent {
            if !opts.feasibility_only && lp_obj >= *best - 1e-9 {
                continue; // bound prune
            }
        }

        // Prefer branching on a fractional SOS1 group (one child per
        // member, ordered by LP weight): assignment structure stays
        // shallow. Fall back to most-fractional single-variable branching.
        let frac_group = model
            .sos1
            .iter()
            .map(|g| {
                let frac: f64 = g
                    .iter()
                    .map(|v| {
                        let x = values[v.0];
                        (x - x.round()).abs()
                    })
                    .sum();
                (g, frac)
            })
            .filter(|&(_, f)| f > opts.int_tol)
            .max_by(|a, b| a.1.total_cmp(&b.1));
        if let Some((group, _)) = frac_group {
            // Children: fix each plausibly-chosen member to 1 (zeroing the
            // rest); push in ascending LP-value order so the best child is
            // explored first (stack is LIFO).
            let mut members: Vec<VarId> = group
                .iter()
                .copied()
                .filter(|v| node.hi[v.0] > 0.5) // not already excluded
                .collect();
            members.sort_by(|a, b| values[a.0].total_cmp(&values[b.0]));
            for &pick in &members {
                let mut child = node.clone();
                child.depth += 1;
                for &other in group {
                    if other == pick {
                        child.lo[other.0] = 1.0;
                    } else {
                        child.hi[other.0] = 0.0;
                    }
                }
                stack.push(child);
            }
            continue;
        }

        // Most-fractional integer variable.
        let frac_var = model
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.ty != VarTy::Continuous)
            .map(|(i, _)| (i, (values[i] - values[i].round()).abs()))
            .filter(|&(_, f)| f > opts.int_tol)
            .max_by(|a, b| a.1.total_cmp(&b.1));

        match frac_var {
            None => {
                // Candidate: snap integers exactly, then verify exactly.
                let mut cand = values.clone();
                for (i, v) in model.vars.iter().enumerate() {
                    if v.ty != VarTy::Continuous {
                        cand[i] = cand[i].round();
                    }
                }
                if model.violated_by(&cand, opts.int_tol).is_some() {
                    continue;
                }
                let cand_obj: f64 = obj
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| c * cand[i])
                    .sum::<f64>()
                    + model.objective.constant * if maximize { -1.0 } else { 1.0 };
                let better = incumbent
                    .as_ref()
                    .is_none_or(|(_, best)| cand_obj < *best - 1e-9);
                if better {
                    incumbent = Some((cand, cand_obj));
                    if opts.feasibility_only {
                        exhausted = true;
                        break;
                    }
                }
            }
            Some((i, _)) => {
                let v = values[i];
                let floor = v.floor();
                // Explore the nearer side first (it sits on top of the stack).
                let mut lo_child = node.clone();
                lo_child.hi[i] = floor;
                lo_child.depth += 1;
                let mut hi_child = node.clone();
                hi_child.lo[i] = floor + 1.0;
                hi_child.depth += 1;
                if v - floor < 0.5 {
                    stack.push(hi_child);
                    stack.push(lo_child);
                } else {
                    stack.push(lo_child);
                    stack.push(hi_child);
                }
            }
        }
    }

    stats.elapsed = start.elapsed();
    let outcome = if unbounded {
        SolveOutcome::Unbounded
    } else {
        match incumbent {
            Some((values, min_obj)) => {
                let objective = if maximize { -min_obj } else { min_obj };
                let sol = Solution { values, objective };
                if exhausted {
                    SolveOutcome::Optimal(sol)
                } else {
                    SolveOutcome::Feasible(sol)
                }
            }
            None => {
                if exhausted {
                    SolveOutcome::Infeasible
                } else {
                    SolveOutcome::TimedOut
                }
            }
        }
    };
    (outcome, stats)
}

#[derive(Debug, Clone)]
struct Node {
    lo: Vec<f64>,
    hi: Vec<f64>,
    depth: u32,
}

/// Shifts node bounds into the nonnegative standard form the simplex
/// consumes: `x = lo + x'`, finite upper bounds become rows `x' <= hi-lo`.
fn build_standard(model: &Model, obj: &[f64], node: &Node) -> StandardLp {
    let n = model.num_vars();
    let mut rows = Vec::with_capacity(model.cons.len() + n);
    for c in &model.cons {
        let coeffs = c.expr.canonical_terms(n);
        // Shift: Σ a_i (lo_i + x'_i) sense rhs  =>  Σ a_i x'_i sense rhs - Σ a_i lo_i.
        let shift: f64 = coeffs.iter().zip(&node.lo).map(|(&a, &l)| a * l).sum();
        rows.push((coeffs, c.sense, c.rhs - c.expr.constant - shift));
    }
    for i in 0..n {
        let span = node.hi[i] - node.lo[i];
        if span.is_finite() {
            let mut row = vec![0.0; n];
            row[i] = 1.0;
            rows.push((row, Sense::Le, span));
        }
    }
    StandardLp {
        n,
        rows,
        obj: obj.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    fn expect_optimal(out: SolveOutcome) -> Solution {
        match out {
            SolveOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn pure_lp_is_solved_at_root() {
        let mut m = Model::new();
        let x = m.cont_var("x", 0.0, 10.0);
        let y = m.cont_var("y", 0.0, 10.0);
        m.constraint(m.expr().term(x, 1.0).term(y, 1.0), Sense::Le, 4.0);
        m.maximize(m.expr().term(x, 3.0).term(y, 5.0));
        let s = expect_optimal(solve(&m, &SolveOptions::default()));
        assert!((s.objective - 20.0).abs() < 1e-6);
        assert!((s.value(y) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn knapsack_small() {
        // Classic: values [60,100,120], weights [10,20,30], cap 50 -> 220.
        let mut m = Model::new();
        let items: Vec<VarId> = (0..3).map(|i| m.binary_var(format!("x{i}"))).collect();
        let weights = [10.0, 20.0, 30.0];
        let values = [60.0, 100.0, 120.0];
        let mut w = m.expr();
        let mut v = m.expr();
        for (i, &x) in items.iter().enumerate() {
            w = w.term(x, weights[i]);
            v = v.term(x, values[i]);
        }
        m.constraint(w, Sense::Le, 50.0);
        m.maximize(v);
        let s = expect_optimal(solve(&m, &SolveOptions::default()));
        assert!((s.objective - 220.0).abs() < 1e-6);
        assert_eq!(s.value(items[0]).round(), 0.0);
        assert_eq!(s.value(items[1]).round(), 1.0);
        assert_eq!(s.value(items[2]).round(), 1.0);
    }

    #[test]
    fn integer_rounding_matters() {
        // max y s.t. 2y <= 7, y integer -> 3 (LP gives 3.5).
        let mut m = Model::new();
        let y = m.int_var("y", 0.0, 100.0);
        m.constraint(m.expr().term(y, 2.0), Sense::Le, 7.0);
        m.maximize(m.expr().term(y, 1.0));
        let s = expect_optimal(solve(&m, &SolveOptions::default()));
        assert_eq!(s.value(y).round(), 3.0);
    }

    #[test]
    fn assignment_problem_3x3() {
        // Costs; optimal assignment cost = 5 (1+3+1? compute: choose (0,1)=1,(1,0)=2,(2,2)=2 -> 5).
        let cost = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let mut m = Model::new();
        let mut x = vec![vec![VarId(0); 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                x[i][j] = m.binary_var(format!("x{i}{j}"));
            }
        }
        for i in 0..3 {
            let mut row = m.expr();
            let mut col = m.expr();
            for j in 0..3 {
                row = row.term(x[i][j], 1.0);
                col = col.term(x[j][i], 1.0);
            }
            m.constraint(row, Sense::Eq, 1.0);
            m.constraint(col, Sense::Eq, 1.0);
        }
        let mut obj = m.expr();
        for i in 0..3 {
            for j in 0..3 {
                obj = obj.term(x[i][j], cost[i][j]);
            }
        }
        m.minimize(obj);
        let s = expect_optimal(solve(&m, &SolveOptions::default()));
        assert!((s.objective - 5.0).abs() < 1e-6, "got {}", s.objective);
    }

    #[test]
    fn sos1_branching_solves_assignment() {
        // Same 3x3 assignment as above, but with SOS1 groups declared on
        // every row: group branching must reach the same optimum.
        let cost = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let mut m = Model::new();
        let mut x = vec![vec![VarId(0); 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                x[i][j] = m.binary_var(format!("x{i}{j}"));
            }
        }
        for i in 0..3 {
            let mut row = m.expr();
            let mut col = m.expr();
            for j in 0..3 {
                row = row.term(x[i][j], 1.0);
                col = col.term(x[j][i], 1.0);
            }
            m.constraint(row, Sense::Eq, 1.0);
            m.constraint(col, Sense::Eq, 1.0);
            m.sos1(x[i].clone());
        }
        let mut obj = m.expr();
        for i in 0..3 {
            for j in 0..3 {
                obj = obj.term(x[i][j], cost[i][j]);
            }
        }
        m.minimize(obj);
        assert_eq!(m.sos1_groups().len(), 3);
        let (out, stats) = solve_with_stats(&m, &SolveOptions::default());
        let s = match out {
            SolveOutcome::Optimal(s) => s,
            other => panic!("{other:?}"),
        };
        assert!((s.objective - 5.0).abs() < 1e-6);
        assert!(stats.nodes < 200, "SOS branching stays shallow: {stats:?}");
    }

    #[test]
    fn infeasible_integer_model() {
        // 2x == 3 with x integer.
        let mut m = Model::new();
        let x = m.int_var("x", 0.0, 10.0);
        m.constraint(m.expr().term(x, 2.0), Sense::Eq, 3.0);
        assert_eq!(
            solve(&m, &SolveOptions::default()),
            SolveOutcome::Infeasible
        );
    }

    #[test]
    fn feasibility_mode_stops_at_first_solution() {
        // Many feasible points; feasibility mode should do little work.
        let mut m = Model::new();
        let xs: Vec<VarId> = (0..12).map(|i| m.binary_var(format!("x{i}"))).collect();
        let mut sum = m.expr();
        for &x in &xs {
            sum = sum.term(x, 1.0);
        }
        m.constraint(sum, Sense::Ge, 6.0);
        let opts = SolveOptions {
            feasibility_only: true,
            ..SolveOptions::default()
        };
        let (out, stats) = solve_with_stats(&m, &opts);
        assert!(matches!(out, SolveOutcome::Optimal(_)));
        assert!(stats.nodes < 100, "nodes {}", stats.nodes);
    }

    #[test]
    fn time_budget_returns_incumbent_or_timeout() {
        let mut m = Model::new();
        let xs: Vec<VarId> = (0..30).map(|i| m.binary_var(format!("x{i}"))).collect();
        let mut sum = m.expr();
        for (i, &x) in xs.iter().enumerate() {
            sum = sum.term(x, 1.0 + (i as f64) * 0.1);
        }
        m.constraint(sum.clone(), Sense::Ge, 10.0);
        m.minimize(sum);
        let opts = SolveOptions {
            time_budget: Duration::from_millis(0),
            ..SolveOptions::default()
        };
        let out = solve(&m, &opts);
        assert!(matches!(
            out,
            SolveOutcome::TimedOut | SolveOutcome::Feasible(_)
        ));
    }

    #[test]
    fn unbounded_reported() {
        let mut m = Model::new();
        let x = m.cont_var("x", 0.0, f64::INFINITY);
        m.maximize(m.expr().term(x, 1.0));
        assert_eq!(solve(&m, &SolveOptions::default()), SolveOutcome::Unbounded);
    }

    #[test]
    fn negative_lower_bounds_shift_correctly() {
        // min x s.t. x >= -5, x integer in [-10, 10] -> -5... constraint
        // x >= -4.5 -> integer -4.
        let mut m = Model::new();
        let x = m.int_var("x", -10.0, 10.0);
        m.constraint(m.expr().term(x, 1.0), Sense::Ge, -4.5);
        m.minimize(m.expr().term(x, 1.0));
        let s = expect_optimal(solve(&m, &SolveOptions::default()));
        assert_eq!(s.value(x).round(), -4.0);
    }

    #[test]
    fn objective_constant_is_respected() {
        let mut m = Model::new();
        let x = m.int_var("x", 0.0, 5.0);
        m.constraint(m.expr().term(x, 1.0), Sense::Ge, 2.0);
        m.minimize(m.expr().term(x, 1.0).constant(10.0));
        let s = expect_optimal(solve(&m, &SolveOptions::default()));
        assert!((s.objective - 12.0).abs() < 1e-6);
    }
}
