//! Model building: variables, linear expressions, constraints.

use std::fmt;

/// Identifies a variable within one [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

/// The integrality class of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarTy {
    /// Real-valued.
    Continuous,
    /// Integer-valued.
    Integer,
    /// Integer restricted to `{0, 1}`.
    Binary,
}

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `expr <= rhs`.
    Le,
    /// `expr >= rhs`.
    Ge,
    /// `expr == rhs`.
    Eq,
}

impl fmt::Display for Sense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sense::Le => "<=",
            Sense::Ge => ">=",
            Sense::Eq => "==",
        })
    }
}

/// A linear expression `Σ cᵢ·xᵢ + constant`.
///
/// Build fluently: `m.expr().term(x, 2.0).term(y, -1.0).constant(3.0)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    pub(crate) terms: Vec<(VarId, f64)>,
    pub(crate) constant: f64,
}

impl LinExpr {
    /// The empty expression (zero).
    #[must_use]
    pub fn new() -> LinExpr {
        LinExpr::default()
    }

    /// Adds `coeff · var`.
    #[must_use]
    pub fn term(mut self, var: VarId, coeff: f64) -> LinExpr {
        if coeff != 0.0 {
            self.terms.push((var, coeff));
        }
        self
    }

    /// Adds a constant offset.
    #[must_use]
    pub fn constant(mut self, c: f64) -> LinExpr {
        self.constant += c;
        self
    }

    /// Adds every term of `other`.
    #[must_use]
    pub fn plus(mut self, other: &LinExpr) -> LinExpr {
        self.terms.extend_from_slice(&other.terms);
        self.constant += other.constant;
        self
    }

    /// Collapses duplicate variables, returning dense-ready terms.
    pub(crate) fn canonical_terms(&self, n_vars: usize) -> Vec<f64> {
        let mut row = vec![0.0; n_vars];
        for &(v, c) in &self.terms {
            row[v.0] += c;
        }
        row
    }

    /// Evaluates the expression under an assignment.
    #[must_use]
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|&(v, c)| c * values[v.0])
                .sum::<f64>()
    }
}

#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub name: String,
    pub ty: VarTy,
    pub lo: f64,
    pub hi: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct ConstraintDef {
    pub expr: LinExpr,
    pub sense: Sense,
    pub rhs: f64,
    pub name: String,
}

/// Objective direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Direction {
    Minimize,
    Maximize,
}

/// An incrementally built MILP.
///
/// # Examples
///
/// ```
/// use ilp::{Model, Sense};
/// let mut m = Model::new();
/// let x = m.binary_var("x");
/// let y = m.cont_var("y", 0.0, 10.0);
/// m.constraint(m.expr().term(x, 3.0).term(y, 1.0), Sense::Le, 7.5);
/// m.minimize(m.expr().term(y, 1.0));
/// assert_eq!(m.num_vars(), 2);
/// assert_eq!(m.num_constraints(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub(crate) vars: Vec<VarDef>,
    pub(crate) cons: Vec<ConstraintDef>,
    pub(crate) objective: LinExpr,
    pub(crate) direction: Option<Direction>,
    pub(crate) sos1: Vec<Vec<VarId>>,
}

impl Model {
    /// An empty model.
    #[must_use]
    pub fn new() -> Model {
        Model::default()
    }

    /// Adds a continuous variable with bounds `[lo, hi]`.
    pub fn cont_var(&mut self, name: impl Into<String>, lo: f64, hi: f64) -> VarId {
        self.add_var(name.into(), VarTy::Continuous, lo, hi)
    }

    /// Adds an integer variable with bounds `[lo, hi]`.
    pub fn int_var(&mut self, name: impl Into<String>, lo: f64, hi: f64) -> VarId {
        self.add_var(name.into(), VarTy::Integer, lo, hi)
    }

    /// Adds a `{0, 1}` variable.
    pub fn binary_var(&mut self, name: impl Into<String>) -> VarId {
        self.add_var(name.into(), VarTy::Binary, 0.0, 1.0)
    }

    fn add_var(&mut self, name: String, ty: VarTy, lo: f64, hi: f64) -> VarId {
        assert!(lo <= hi, "variable {name} has empty bounds [{lo}, {hi}]");
        let id = VarId(self.vars.len());
        self.vars.push(VarDef { name, ty, lo, hi });
        id
    }

    /// Starts a fresh expression (sugar so call sites read
    /// `m.expr().term(x, 1.0)`).
    #[must_use]
    pub fn expr(&self) -> LinExpr {
        LinExpr::new()
    }

    /// Adds a constraint `expr sense rhs`.
    pub fn constraint(&mut self, expr: LinExpr, sense: Sense, rhs: f64) {
        let name = format!("c{}", self.cons.len());
        self.named_constraint(name, expr, sense, rhs);
    }

    /// Adds a named constraint (names surface in diagnostics).
    pub fn named_constraint(
        &mut self,
        name: impl Into<String>,
        expr: LinExpr,
        sense: Sense,
        rhs: f64,
    ) {
        self.cons.push(ConstraintDef {
            expr,
            sense,
            rhs,
            name: name.into(),
        });
    }

    /// Declares a special-ordered set of type 1: at most (here: exactly,
    /// when paired with an equality row) one of `vars` is nonzero. The
    /// branch-and-bound search branches on whole groups — one child per
    /// member — which keeps assignment-structured models shallow.
    pub fn sos1(&mut self, vars: Vec<VarId>) {
        if vars.len() > 1 {
            self.sos1.push(vars);
        }
    }

    /// The declared SOS1 groups.
    #[must_use]
    pub fn sos1_groups(&self) -> &[Vec<VarId>] {
        &self.sos1
    }

    /// Sets a minimization objective.
    pub fn minimize(&mut self, expr: LinExpr) {
        self.objective = expr;
        self.direction = Some(Direction::Minimize);
    }

    /// Sets a maximization objective.
    pub fn maximize(&mut self, expr: LinExpr) {
        self.objective = expr;
        self.direction = Some(Direction::Maximize);
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.cons.len()
    }

    /// Number of integer-constrained (integer or binary) variables.
    #[must_use]
    pub fn num_integer_vars(&self) -> usize {
        self.vars
            .iter()
            .filter(|v| v.ty != VarTy::Continuous)
            .count()
    }

    /// The declared bounds of a variable.
    #[must_use]
    pub fn bounds(&self, var: VarId) -> (f64, f64) {
        let v = &self.vars[var.0];
        (v.lo, v.hi)
    }

    /// The name of a variable.
    #[must_use]
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var.0].name
    }

    /// Checks an assignment against every constraint, bound, and
    /// integrality requirement using exact rational arithmetic (values are
    /// rounded to the nearest rational with denominator `2^20` first, which
    /// is exact for the integral assignments branch-and-bound produces).
    /// Returns the name of the first violated requirement.
    #[must_use]
    pub fn violated_by(&self, values: &[f64], int_tol: f64) -> Option<String> {
        use numeric::Rational;
        const DENOM: i128 = 1 << 20;
        let to_rat = |v: f64| Rational::new((v * DENOM as f64).round() as i128, DENOM);
        let vals: Vec<Rational> = values.iter().map(|&v| to_rat(v)).collect();
        for (i, v) in self.vars.iter().enumerate() {
            if vals[i] < to_rat(v.lo) || vals[i] > to_rat(v.hi) {
                return Some(format!("bounds of {}", v.name));
            }
            if v.ty != VarTy::Continuous && (values[i] - values[i].round()).abs() > int_tol {
                return Some(format!("integrality of {}", v.name));
            }
        }
        for c in &self.cons {
            let mut lhs = to_rat(c.expr.constant);
            for &(var, coeff) in &c.expr.terms {
                lhs += to_rat(coeff) * vals[var.0];
            }
            let rhs = to_rat(c.rhs);
            let ok = match c.sense {
                Sense::Le => lhs <= rhs,
                Sense::Ge => lhs >= rhs,
                Sense::Eq => lhs == rhs,
            };
            if !ok {
                return Some(c.name.clone());
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builds_and_evaluates() {
        let mut m = Model::new();
        let x = m.cont_var("x", 0.0, 10.0);
        let y = m.cont_var("y", 0.0, 10.0);
        let e = m.expr().term(x, 2.0).term(y, -1.0).constant(3.0);
        assert_eq!(e.eval(&[4.0, 1.0]), 10.0);
        let sum = e.clone().plus(&m.expr().term(x, 1.0));
        assert_eq!(sum.eval(&[4.0, 1.0]), 14.0);
    }

    #[test]
    fn canonical_terms_merge_duplicates() {
        let mut m = Model::new();
        let x = m.cont_var("x", 0.0, 1.0);
        let e = m.expr().term(x, 2.0).term(x, 3.0);
        assert_eq!(e.canonical_terms(1), vec![5.0]);
    }

    #[test]
    #[should_panic(expected = "empty bounds")]
    fn inverted_bounds_panic() {
        let mut m = Model::new();
        let _ = m.cont_var("x", 2.0, 1.0);
    }

    #[test]
    fn violated_by_detects_each_kind() {
        let mut m = Model::new();
        let x = m.int_var("x", 0.0, 5.0);
        m.named_constraint("cap", m.expr().term(x, 1.0), Sense::Le, 3.0);
        assert_eq!(m.violated_by(&[2.0], 1e-6), None);
        assert_eq!(m.violated_by(&[4.0], 1e-6), Some("cap".into()));
        assert_eq!(m.violated_by(&[2.5], 1e-6), Some("integrality of x".into()));
        assert_eq!(m.violated_by(&[-1.0], 1e-6), Some("bounds of x".into()));
    }

    #[test]
    fn counts() {
        let mut m = Model::new();
        let _x = m.binary_var("x");
        let _y = m.cont_var("y", 0.0, 1.0);
        let _z = m.int_var("z", -3.0, 3.0);
        assert_eq!(m.num_vars(), 3);
        assert_eq!(m.num_integer_vars(), 2);
    }
}
