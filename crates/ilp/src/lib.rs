//! A mixed-integer linear programming solver.
//!
//! This crate substitutes for CPLEX in the paper's toolchain: the
//! software-pipelining phase formulates scheduling + processor assignment
//! as an ILP *feasibility* problem for a candidate initiation interval and
//! hands it to a solver under a time budget (20 s in the paper), relaxing
//! the II when the budget expires.
//!
//! Components:
//!
//! * [`Model`] — an incremental model builder: typed variables
//!   (continuous / integer / binary) with bounds, linear constraints, an
//!   optional linear objective.
//! * An internal two-phase primal **simplex** over `f64` with Bland's rule
//!   for the LP relaxations.
//! * [`solve`] — **branch & bound** on the LP relaxation: most-fractional
//!   branching, depth-first with best-first tie-breaking, node and
//!   wall-clock budgets, and early exit in feasibility mode. Every
//!   incumbent is re-verified in *exact rational arithmetic* before being
//!   accepted, so floating-point drift in the LP cannot produce a bogus
//!   "feasible" schedule.
//!
//! # Example
//!
//! ```
//! use ilp::{Model, SolveOptions, SolveOutcome};
//!
//! // maximize x + 2y  s.t.  x + y <= 4,  x, y in {0..3} integer.
//! let mut m = Model::new();
//! let x = m.int_var("x", 0.0, 3.0);
//! let y = m.int_var("y", 0.0, 3.0);
//! m.constraint(m.expr().term(x, 1.0).term(y, 1.0), ilp::Sense::Le, 4.0);
//! m.maximize(m.expr().term(x, 1.0).term(y, 2.0));
//! let out = ilp::solve(&m, &SolveOptions::default());
//! match out {
//!     SolveOutcome::Optimal(sol) => {
//!         assert_eq!(sol.value(y).round(), 3.0);
//!         assert_eq!(sol.objective.round(), 7.0);
//!     }
//!     other => panic!("expected optimal, got {other:?}"),
//! }
//! ```

mod model;
mod presolve;
mod simplex;
mod solver;

pub use model::{LinExpr, Model, Sense, VarId, VarTy};
pub use presolve::{presolve, Presolved};
pub use solver::{solve, solve_with_stats, Solution, SolveOptions, SolveOutcome, SolveStats};
