//! Two-phase primal simplex over `f64` (dense tableau).
//!
//! Solves `min cᵀx  s.t.  Ax {<=,>=,==} b,  x >= 0`. The branch-and-bound
//! driver shifts general variable bounds into this nonnegative standard
//! form. Dantzig pricing with an automatic switch to Bland's rule guards
//! against cycling on the (highly degenerate) scheduling LPs.

use crate::model::Sense;

const EPS: f64 = 1e-9;

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum LpResult {
    /// Optimal basic solution found.
    Optimal {
        /// Values of the structural variables.
        x: Vec<f64>,
        /// Objective value.
        obj: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

/// A standard-form LP: `min obj·x` subject to `rows`, `x >= 0`.
#[derive(Debug, Clone)]
pub(crate) struct StandardLp {
    /// Number of structural variables.
    pub n: usize,
    /// Constraints as `(coefficients, sense, rhs)`.
    pub rows: Vec<(Vec<f64>, Sense, f64)>,
    /// Objective coefficients (minimization).
    pub obj: Vec<f64>,
}

struct Tableau {
    /// `m x width` constraint matrix, last column is the rhs.
    a: Vec<Vec<f64>>,
    /// Objective row (phase-dependent), last entry is `-objective`.
    z: Vec<f64>,
    /// Basis: column index of the basic variable of each row.
    basis: Vec<usize>,
    m: usize,
    n_struct: usize,
    n_total: usize,
    n_artificial: usize,
}

impl Tableau {
    fn new(lp: &StandardLp) -> Tableau {
        let m = lp.rows.len();
        // Column plan: structural | slack/surplus (one per inequality) |
        // artificial (for >= and ==).
        let eff_senses: Vec<Sense> = lp
            .rows
            .iter()
            .map(|(_, sense, rhs)| match (sense, *rhs < 0.0) {
                (Sense::Le, false) | (Sense::Ge, true) => Sense::Le,
                (Sense::Ge, false) | (Sense::Le, true) => Sense::Ge,
                (Sense::Eq, _) => Sense::Eq,
            })
            .collect();
        let mut n_slack = 0usize;
        let mut n_art = 0usize;
        for sense in &eff_senses {
            match sense {
                Sense::Le => n_slack += 1,
                Sense::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Sense::Eq => n_art += 1,
            }
        }
        let n_total = lp.n + n_slack + n_art;
        let width = n_total + 1;
        let mut a = vec![vec![0.0; width]; m];
        let mut basis = vec![0usize; m];
        let mut slack_col = lp.n;
        let mut art_col = lp.n + n_slack;

        for (i, (coeffs, _, rhs)) in lp.rows.iter().enumerate() {
            let flip = *rhs < 0.0;
            let sgn = if flip { -1.0 } else { 1.0 };
            for (j, &c) in coeffs.iter().enumerate() {
                a[i][j] = sgn * c;
            }
            a[i][n_total] = sgn * rhs;
            match eff_senses[i] {
                Sense::Le => {
                    a[i][slack_col] = 1.0;
                    basis[i] = slack_col;
                    slack_col += 1;
                }
                Sense::Ge => {
                    a[i][slack_col] = -1.0;
                    slack_col += 1;
                    a[i][art_col] = 1.0;
                    basis[i] = art_col;
                    art_col += 1;
                }
                Sense::Eq => {
                    a[i][art_col] = 1.0;
                    basis[i] = art_col;
                    art_col += 1;
                }
            }
        }

        Tableau {
            a,
            z: vec![0.0; width],
            basis,
            m,
            n_struct: lp.n,
            n_total,
            n_artificial: n_art,
        }
    }

    /// Recomputes the objective row so basic variables have zero reduced
    /// cost.
    fn price_out_basis(&mut self) {
        for i in 0..self.m {
            let b = self.basis[i];
            let coeff = self.z[b];
            if coeff != 0.0 {
                let width = self.n_total + 1;
                for j in 0..width {
                    self.z[j] -= coeff * self.a[i][j];
                }
            }
        }
    }

    /// Pivots artificial variables out of the basis (or marks their rows
    /// redundant) and forbids them from re-entering by pinning their cost.
    fn expel_artificials(&mut self, art_start: usize) {
        for i in 0..self.m {
            if self.basis[i] >= art_start {
                // Find any non-artificial column with a nonzero pivot.
                if let Some(j) = (0..art_start).find(|&j| self.a[i][j].abs() > EPS) {
                    self.pivot(i, j);
                }
                // Otherwise the row is redundant; the artificial stays
                // basic at value 0, harmless in phase 2.
            }
        }
    }

    #[allow(clippy::needless_range_loop)]
    fn pivot(&mut self, row: usize, col: usize) {
        let width = self.n_total + 1;
        let p = self.a[row][col];
        for j in 0..width {
            self.a[row][j] /= p;
        }
        for i in 0..self.m {
            if i != row {
                let f = self.a[i][col];
                if f != 0.0 {
                    for j in 0..width {
                        self.a[i][j] -= f * self.a[row][j];
                    }
                }
            }
        }
        let f = self.z[col];
        if f != 0.0 {
            for j in 0..width {
                self.z[j] -= f * self.a[row][j];
            }
        }
        self.basis[row] = col;
    }

    fn iterate(&mut self) -> Iteration {
        let allowed = self.n_total;
        let mut iters = 0usize;
        let bland_after = 50 + 4 * self.m;
        loop {
            iters += 1;
            let use_bland = iters > bland_after;
            // Entering column.
            let mut enter: Option<usize> = None;
            let mut best = -EPS;
            for j in 0..allowed {
                let rc = self.z[j];
                if rc < -EPS {
                    if use_bland {
                        enter = Some(j);
                        break;
                    }
                    if rc < best {
                        best = rc;
                        enter = Some(j);
                    }
                }
            }
            let Some(col) = enter else {
                return Iteration::Optimal;
            };
            // Ratio test.
            let rhs = self.n_total;
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.m {
                let aij = self.a[i][col];
                if aij > EPS {
                    let ratio = self.a[i][rhs] / aij;
                    if ratio < best_ratio - EPS
                        || (use_bland
                            && (ratio - best_ratio).abs() <= EPS
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]))
                    {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(row) = leave else {
                return Iteration::Unbounded;
            };
            self.pivot(row, col);
            if iters > 200_000 {
                // Pathological cycling safety valve.
                return Iteration::Optimal;
            }
        }
    }

    fn extract(&self) -> Vec<f64> {
        let rhs = self.n_total;
        let mut x = vec![0.0; self.n_struct];
        for i in 0..self.m {
            if self.basis[i] < self.n_struct {
                x[self.basis[i]] = self.a[i][rhs];
            }
        }
        x
    }
}

#[derive(PartialEq)]
enum Iteration {
    Optimal,
    Unbounded,
}

/// Full driver: phase 1 (if needed) then phase 2 with the real objective.
pub(crate) fn run(lp: &StandardLp) -> LpResult {
    let mut t = Tableau::new(lp);
    let art_start = t.n_total - t.n_artificial;

    if t.n_artificial > 0 {
        t.z = vec![0.0; t.n_total + 1];
        for j in art_start..t.n_total {
            t.z[j] = 1.0;
        }
        t.price_out_basis();
        if t.iterate() == Iteration::Unbounded {
            return LpResult::Infeasible;
        }
        if -t.z[t.n_total] > 1e-7 {
            return LpResult::Infeasible;
        }
        t.expel_artificials(art_start);
    }

    // Phase 2 objective: structural costs; artificial columns pinned out
    // with a large cost so they never re-enter.
    t.z = vec![0.0; t.n_total + 1];
    for (j, &c) in lp.obj.iter().enumerate() {
        t.z[j] = c;
    }
    for j in art_start..t.n_total {
        t.z[j] = 1e12;
    }
    t.price_out_basis();
    match t.iterate() {
        Iteration::Unbounded => LpResult::Unbounded,
        Iteration::Optimal => {
            let x = t.extract();
            let obj = lp.obj.iter().zip(&x).map(|(c, v)| c * v).sum();
            LpResult::Optimal { x, obj }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(n: usize, rows: Vec<(Vec<f64>, Sense, f64)>, obj: Vec<f64>) -> StandardLp {
        StandardLp { n, rows, obj }
    }

    #[test]
    fn simple_maximization_via_min() {
        // max x + y s.t. x + 2y <= 4, 3x + y <= 6  => min -(x+y).
        let r = run(&lp(
            2,
            vec![
                (vec![1.0, 2.0], Sense::Le, 4.0),
                (vec![3.0, 1.0], Sense::Le, 6.0),
            ],
            vec![-1.0, -1.0],
        ));
        match r {
            LpResult::Optimal { x, obj } => {
                assert!((obj + 2.8).abs() < 1e-6, "obj {obj}");
                assert!((x[0] - 1.6).abs() < 1e-6);
                assert!((x[1] - 1.2).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + y s.t. x + y == 5, x >= 2.
        let r = run(&lp(
            2,
            vec![
                (vec![1.0, 1.0], Sense::Eq, 5.0),
                (vec![1.0, 0.0], Sense::Ge, 2.0),
            ],
            vec![1.0, 1.0],
        ));
        match r {
            LpResult::Optimal { obj, .. } => assert!((obj - 5.0).abs() < 1e-6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2.
        let r = run(&lp(
            1,
            vec![(vec![1.0], Sense::Le, 1.0), (vec![1.0], Sense::Ge, 2.0)],
            vec![0.0],
        ));
        assert_eq!(r, LpResult::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x with only x >= 0: unbounded.
        let r = run(&lp(1, vec![(vec![1.0], Sense::Ge, 0.0)], vec![-1.0]));
        assert_eq!(r, LpResult::Unbounded);
    }

    #[test]
    fn negative_rhs_handled() {
        // -x <= -3  <=>  x >= 3; min x -> 3.
        let r = run(&lp(1, vec![(vec![-1.0], Sense::Le, -3.0)], vec![1.0]));
        match r {
            LpResult::Optimal { x, obj } => {
                assert!((x[0] - 3.0).abs() < 1e-6);
                assert!((obj - 3.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Klee-Minty-ish degenerate rows.
        let r = run(&lp(
            3,
            vec![
                (vec![1.0, 0.0, 0.0], Sense::Le, 1.0),
                (vec![4.0, 1.0, 0.0], Sense::Le, 8.0),
                (vec![8.0, 4.0, 1.0], Sense::Le, 64.0),
                (vec![1.0, 1.0, 1.0], Sense::Ge, 0.0),
            ],
            vec![-4.0, -2.0, -1.0],
        ));
        assert!(matches!(r, LpResult::Optimal { .. }));
    }
}
