//! The crate-wide error type.

use std::fmt;

/// Errors produced while building, validating, flattening, solving, or
/// executing stream programs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A kernel-IR work function failed validation (type error, dynamic
    /// rates, out-of-range reference, ...). The string pinpoints the cause.
    InvalidWork(String),
    /// A hierarchical stream composition is malformed (arity mismatch,
    /// incompatible channel element types, empty pipeline, ...).
    InvalidGraph(String),
    /// The balance equations of the flattened graph have no non-trivial
    /// solution: the graph would accumulate or starve tokens without bound.
    InconsistentRates {
        /// Human-readable location of the first conflicting channel.
        channel: String,
    },
    /// No node can fire even though the steady-state iteration is
    /// incomplete; feedback loops need more initial tokens.
    Deadlock {
        /// Firings still owed when execution stalled, as `name:remaining`.
        stalled: Vec<String>,
    },
    /// A work function trapped at run time (integer division by zero,
    /// array index out of bounds, ...).
    Trap(String),
    /// An executor was given fewer input tokens than the requested number of
    /// steady-state iterations consumes.
    InsufficientInput {
        /// Tokens required by the run.
        needed: usize,
        /// Tokens actually supplied.
        got: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidWork(msg) => write!(f, "invalid work function: {msg}"),
            Error::InvalidGraph(msg) => write!(f, "invalid stream graph: {msg}"),
            Error::InconsistentRates { channel } => {
                write!(f, "inconsistent steady-state rates at channel {channel}")
            }
            Error::Deadlock { stalled } => {
                write!(
                    f,
                    "stream graph deadlocked; stalled firings: {}",
                    stalled.join(", ")
                )
            }
            Error::Trap(msg) => write!(f, "work function trapped: {msg}"),
            Error::InsufficientInput { needed, got } => {
                write!(f, "insufficient input tokens: needed {needed}, got {got}")
            }
        }
    }
}

impl std::error::Error for Error {}
