//! Stream-program intermediate representation and CPU execution.
//!
//! This crate is the front half of the CGO 2009 reproduction: everything the
//! StreamIt front-end and runtime would have provided. It contains:
//!
//! * [`ir`] — a small imperative **kernel IR** in which every filter's work
//!   function is written: typed locals, constant tables, local arrays,
//!   constant-trip `for` loops, structured `if`, and the three StreamIt
//!   channel primitives `push` / `pop` / `peek`. The IR is validated and
//!   statically analysed so that each filter's push/pop/peek rates are
//!   compile-time constants — the contract synchronous dataflow requires.
//! * [`graph`] — hierarchical stream composition (pipelines, split-joins,
//!   feedback loops) and flattening into a [`graph::FlatGraph`] of filters
//!   connected by FIFO channels, with explicit splitter/joiner nodes.
//! * [`sdf`] — the steady-state machinery: repetition vectors from the
//!   balance equations, consistency and deadlock diagnostics.
//! * [`cpu`] — a single-threaded reference executor with a calibrated cycle
//!   model; this is the `t_host` baseline of the paper's speedup metric and
//!   the functional oracle for the GPU simulator.
//!
//! # Quick example
//!
//! ```
//! use streamir::graph::{FilterSpec, StreamSpec};
//! use streamir::ir::{ElemTy, Expr, FnBuilder};
//!
//! // A filter that doubles each integer it sees.
//! let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
//! let x = f.local(ElemTy::I32);
//! f.pop_into(0, x);
//! f.push(0, Expr::local(x).mul(Expr::i32(2)));
//! let doubler = FilterSpec::new("doubler", f.build()?);
//!
//! let graph = StreamSpec::filter(doubler).flatten()?;
//! let steady = streamir::sdf::solve(&graph)?;
//! assert_eq!(steady.repetitions(), &[1]);
//! # Ok::<(), streamir::Error>(())
//! ```

pub mod channel;
pub mod cpu;
pub mod graph;
pub mod ir;
pub mod sdf;

mod error;

pub use error::Error;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
