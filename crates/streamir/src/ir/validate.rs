//! Validation and static analysis of work functions.
//!
//! The analysis walks the statement list abstractly but *exactly*: `for`
//! loops are analysed once per iteration with the induction variable bound
//! to its concrete value (trip counts are compile-time constants, so this
//! terminates and mirrors dynamic execution). This makes pop/push counts and
//! peek depths exact, which is exactly the static-rate contract synchronous
//! dataflow scheduling needs. The only approximation is at data-dependent
//! `if`s, whose arms are required to have identical channel rates (as in
//! StreamIt) and whose op census is taken as the element-wise maximum of the
//! two arms.

use std::collections::HashMap;

use crate::{Error, Result};

use super::{BinOp, ElemTy, Expr, LocalId, Stmt, UnOp, WorkFunction};

/// Per-input-port channel rates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortRates {
    /// Tokens consumed per firing.
    pub pop: u32,
    /// Deepest FIFO position touched per firing (`pops-before + depth + 1`
    /// maximised over all peeks); `0` if the port never peeks.
    pub peek: u32,
}

/// Static operation census of one firing (worst case over `if` arms).
///
/// Used for the CPU cycle model's static sanity checks and for quick
/// work-size diagnostics; the executors additionally count dynamically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCensus {
    /// Plain ALU operations (arithmetic, logic, comparisons, conversions).
    pub alu: u64,
    /// Special-function operations (sin, cos, sqrt).
    pub transcendental: u64,
    /// Channel reads (pops + peeks).
    pub channel_reads: u64,
    /// Channel writes (pushes).
    pub channel_writes: u64,
    /// Scratch-array loads and stores.
    pub array_ops: u64,
    /// Constant-table loads.
    pub table_loads: u64,
    /// Control overhead (loop back-edges, branches).
    pub control: u64,
}

impl OpCensus {
    fn max(self, other: OpCensus) -> OpCensus {
        OpCensus {
            alu: self.alu.max(other.alu),
            transcendental: self.transcendental.max(other.transcendental),
            channel_reads: self.channel_reads.max(other.channel_reads),
            channel_writes: self.channel_writes.max(other.channel_writes),
            array_ops: self.array_ops.max(other.array_ops),
            table_loads: self.table_loads.max(other.table_loads),
            control: self.control.max(other.control),
        }
    }

    /// Total dynamic operations of all classes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.alu
            + self.transcendental
            + self.channel_reads
            + self.channel_writes
            + self.array_ops
            + self.table_loads
            + self.control
    }
}

/// Everything the validator learns about a work function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkInfo {
    /// Rates per input port.
    pub inputs: Vec<PortRates>,
    /// Push count per output port.
    pub outputs: Vec<u32>,
    /// Worst-case op census of one firing.
    pub census: OpCensus,
    /// Estimated registers per thread: a fixed overhead for address
    /// arithmetic plus one per scalar local plus the deepest expression
    /// evaluation stack.
    pub reg_estimate: u32,
    /// Total scratch-array words (spilled to per-thread local memory on the
    /// simulated device).
    pub local_array_words: u32,
    /// `true` if the body contains any `if` (potential warp divergence).
    pub has_branches: bool,
    /// `true` if the function reads or writes persistent state.
    pub has_state: bool,
}

/// Registers reserved for thread/block index and buffer address arithmetic,
/// mirroring the fixed overhead nvcc-generated kernels exhibit.
pub const REG_OVERHEAD: u32 = 6;

/// What a channel-access site does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Consumes one token from an input port.
    Pop,
    /// Reads an input-port token at a depth without consuming.
    Peek,
    /// Produces one token on an output port.
    Push,
}

/// One *syntactic* channel-access site in a work-function body.
///
/// Sites are enumerated in the canonical pre-order of [`access_sites`]; a
/// site inside a loop is still one site (it executes many times). The
/// `ordinal` numbers sites of the same kind and port, so diagnostics can
/// name an access stably ("push\[out0\]#1") across tools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessSite {
    /// Pop, peek, or push.
    pub kind: AccessKind,
    /// The input port (pop/peek) or output port (push).
    pub port: u8,
    /// 0-based index among sites with the same kind and port, in
    /// canonical pre-order.
    pub ordinal: u32,
}

impl std::fmt::Display for AccessSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (kind, dir) = match self.kind {
            AccessKind::Pop => ("pop", "in"),
            AccessKind::Peek => ("peek", "in"),
            AccessKind::Push => ("push", "out"),
        };
        write!(f, "{kind}[{dir}{}]#{}", self.port, self.ordinal)
    }
}

/// Enumerates every syntactic channel-access site of a work function in
/// canonical pre-order: statements in source order, a `for` body once
/// (syntactic, not unrolled), `if` then-arm before else-arm; within a
/// statement sub-expressions depth-first left-to-right, a peek's depth
/// subtree before the peek itself, and a push's value expression before
/// the push site — the same order the warp interpreter first reaches each
/// site, so consumers can zip their own identical walk against this list.
#[must_use]
pub fn access_sites(wf: &WorkFunction) -> Vec<AccessSite> {
    let mut sites = Vec::new();
    let mut counters: HashMap<(AccessKind, u8), u32> = HashMap::new();
    let mut emit = |sites: &mut Vec<AccessSite>, kind: AccessKind, port: u8| {
        let ordinal = counters.entry((kind, port)).or_insert(0);
        sites.push(AccessSite {
            kind,
            port,
            ordinal: *ordinal,
        });
        *ordinal += 1;
    };
    fn walk_expr(
        e: &Expr,
        sites: &mut Vec<AccessSite>,
        emit: &mut impl FnMut(&mut Vec<AccessSite>, AccessKind, u8),
    ) {
        match e {
            Expr::Peek { port, depth } => {
                walk_expr(depth, sites, emit);
                emit(sites, AccessKind::Peek, *port);
            }
            Expr::Unary(_, inner) => walk_expr(inner, sites, emit),
            Expr::Binary(_, lhs, rhs) => {
                walk_expr(lhs, sites, emit);
                walk_expr(rhs, sites, emit);
            }
            Expr::LoadArr { index, .. } | Expr::LoadTable { index, .. } => {
                walk_expr(index, sites, emit);
            }
            Expr::I32(_) | Expr::F32(_) | Expr::Local(_) | Expr::LoadState(_) => {}
        }
    }
    fn walk_block(
        stmts: &[Stmt],
        sites: &mut Vec<AccessSite>,
        emit: &mut impl FnMut(&mut Vec<AccessSite>, AccessKind, u8),
    ) {
        for s in stmts {
            match s {
                Stmt::Assign(_, e) | Stmt::StoreState(_, e) => walk_expr(e, sites, emit),
                Stmt::Store { index, value, .. } => {
                    walk_expr(index, sites, emit);
                    walk_expr(value, sites, emit);
                }
                Stmt::Pop { port, .. } => emit(sites, AccessKind::Pop, *port),
                Stmt::Push { port, value } => {
                    walk_expr(value, sites, emit);
                    emit(sites, AccessKind::Push, *port);
                }
                Stmt::For { body, .. } => walk_block(body, sites, emit),
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    walk_expr(cond, sites, emit);
                    walk_block(then_body, sites, emit);
                    walk_block(else_body, sites, emit);
                }
            }
        }
    }
    walk_block(&wf.body, &mut sites, &mut emit);
    sites
}

/// An inclusive integer interval, `None` meaning "unknown".
type Range = Option<(i64, i64)>;

struct Analyzer<'a> {
    wf: &'a WorkFunction,
    /// Pops performed so far per input port (exact along the abstract walk).
    pops: Vec<u32>,
    /// Pushes performed so far per output port.
    pushes: Vec<u32>,
    /// Deepest absolute FIFO index touched per input port.
    peek_need: Vec<u32>,
    census: OpCensus,
    max_expr_depth: u32,
    has_branches: bool,
    /// Values of in-scope loop induction variables.
    loop_vars: HashMap<LocalId, i64>,
}

/// Validates a work function and computes its [`WorkInfo`].
///
/// # Errors
///
/// Returns [`Error::InvalidWork`] for any type error, undeclared reference,
/// non-static rate, loop-variable write, statically out-of-bounds access, or
/// unboundable peek depth.
pub fn validate(wf: &WorkFunction) -> Result<WorkInfo> {
    let mut a = Analyzer {
        wf,
        pops: vec![0; wf.input_ports.len()],
        pushes: vec![0; wf.output_ports.len()],
        peek_need: vec![0; wf.input_ports.len()],
        census: OpCensus::default(),
        max_expr_depth: 0,
        has_branches: false,
        loop_vars: HashMap::new(),
    };
    a.block(&wf.body)?;
    let inputs = a
        .pops
        .iter()
        .zip(&a.peek_need)
        .map(|(&pop, &peek)| PortRates { pop, peek })
        .collect();
    Ok(WorkInfo {
        inputs,
        outputs: a.pushes.clone(),
        census: a.census,
        reg_estimate: REG_OVERHEAD
            + wf.locals.len() as u32
            + wf.states.len() as u32
            + a.max_expr_depth,
        local_array_words: wf.arrays.iter().map(|&(_, len)| len).sum(),
        has_branches: a.has_branches,
        has_state: !wf.states.is_empty(),
    })
}

fn err(msg: impl Into<String>) -> Error {
    Error::InvalidWork(msg.into())
}

impl<'a> Analyzer<'a> {
    fn block(&mut self, stmts: &[Stmt]) -> Result<()> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<()> {
        match s {
            Stmt::Assign(local, e) => {
                if self.loop_vars.contains_key(local) {
                    return Err(err(format!(
                        "assignment to loop induction variable {local:?}"
                    )));
                }
                let lty = self.local_ty(*local)?;
                let (ety, _) = self.expr(e, 0)?;
                if lty != ety {
                    return Err(err(format!(
                        "assignment type mismatch: local {local:?} is {lty}, expression is {ety}"
                    )));
                }
                Ok(())
            }
            Stmt::StoreState(id, e) => {
                let sty = self
                    .wf
                    .states
                    .get(id.0 as usize)
                    .map(|d| d.ty)
                    .ok_or_else(|| err(format!("undeclared state {id:?}")))?;
                let (ety, _) = self.expr(e, 0)?;
                if sty != ety {
                    return Err(err(format!(
                        "state store type mismatch: state is {sty}, expression is {ety}"
                    )));
                }
                self.census.alu += 1;
                Ok(())
            }
            Stmt::Store { arr, index, value } => {
                let (aty, alen) = *self
                    .wf
                    .arrays
                    .get(arr.0 as usize)
                    .ok_or_else(|| err(format!("undeclared array {arr:?}")))?;
                let (ity, irange) = self.expr(index, 0)?;
                if ity != ElemTy::I32 {
                    return Err(err("array index must be i32"));
                }
                check_static_bounds(irange, alen, "array store")?;
                let (vty, _) = self.expr(value, 0)?;
                if vty != aty {
                    return Err(err(format!(
                        "array store type mismatch: array is {aty}, value is {vty}"
                    )));
                }
                self.census.array_ops += 1;
                Ok(())
            }
            Stmt::Pop { port, dst } => {
                let pty = self.input_ty(*port)?;
                if let Some(dst) = dst {
                    if self.loop_vars.contains_key(dst) {
                        return Err(err("pop into loop induction variable"));
                    }
                    let lty = self.local_ty(*dst)?;
                    if lty != pty {
                        return Err(err(format!(
                            "pop type mismatch: port {port} is {pty}, local {dst:?} is {lty}"
                        )));
                    }
                }
                let p = *port as usize;
                self.pops[p] += 1;
                self.peek_need[p] = self.peek_need[p].max(self.pops[p]);
                self.census.channel_reads += 1;
                Ok(())
            }
            Stmt::Push { port, value } => {
                let pty = self.output_ty(*port)?;
                let (vty, _) = self.expr(value, 0)?;
                if vty != pty {
                    return Err(err(format!(
                        "push type mismatch: port {port} is {pty}, value is {vty}"
                    )));
                }
                self.pushes[*port as usize] += 1;
                self.census.channel_writes += 1;
                Ok(())
            }
            Stmt::For { var, lo, hi, body } => {
                let vty = self.local_ty(*var)?;
                if vty != ElemTy::I32 {
                    return Err(err("loop induction variable must be i32"));
                }
                if self.loop_vars.contains_key(var) {
                    return Err(err("loop induction variable reused by nested loop"));
                }
                // Unrolled analysis: exact rates, exact constant folding of
                // expressions over the induction variable.
                for v in *lo..*hi {
                    self.loop_vars.insert(*var, i64::from(v));
                    self.census.control += 1;
                    self.block(body)?;
                }
                self.loop_vars.remove(var);
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let (cty, crange) = self.expr(cond, 0)?;
                if cty != ElemTy::I32 {
                    return Err(err("if condition must be i32"));
                }
                self.has_branches = true;
                self.census.control += 1;
                // If the condition folds to a constant, analyse only the
                // taken arm (common for index-parity filters in loops).
                if let Some((lo, hi)) = crange {
                    if lo == hi {
                        return self.block(if lo != 0 { then_body } else { else_body });
                    }
                }
                let snapshot = (self.pops.clone(), self.pushes.clone(), self.census);
                self.block(then_body)?;
                let then_state = (self.pops.clone(), self.pushes.clone(), self.census);
                self.pops = snapshot.0.clone();
                self.pushes = snapshot.1.clone();
                self.census = snapshot.2;
                self.block(else_body)?;
                if self.pops != then_state.0 {
                    return Err(err(
                        "if arms consume different token counts; rates must be static",
                    ));
                }
                if self.pushes != then_state.1 {
                    return Err(err(
                        "if arms produce different token counts; rates must be static",
                    ));
                }
                self.census = self.census.max(then_state.2);
                Ok(())
            }
        }
    }

    /// Type-checks an expression, returning its type and (for `i32`
    /// expressions) a constant-propagation interval used to bound peek
    /// depths and array indices. `depth` is the current evaluation-stack
    /// depth for the register estimate.
    fn expr(&mut self, e: &Expr, depth: u32) -> Result<(ElemTy, Range)> {
        self.max_expr_depth = self.max_expr_depth.max(depth + 1);
        match e {
            Expr::I32(v) => Ok((ElemTy::I32, Some((i64::from(*v), i64::from(*v))))),
            Expr::F32(_) => Ok((ElemTy::F32, None)),
            Expr::Local(l) => {
                let ty = self.local_ty(*l)?;
                let range = self.loop_vars.get(l).map(|&v| (v, v));
                Ok((ty, range))
            }
            Expr::Peek { port, depth: d } => {
                let pty = self.input_ty(*port)?;
                let (dty, drange) = self.expr(d, depth + 1)?;
                if dty != ElemTy::I32 {
                    return Err(err("peek depth must be i32"));
                }
                let (_, hi) = drange.ok_or_else(|| {
                    err(format!(
                        "peek depth on port {port} is not statically boundable"
                    ))
                })?;
                if hi < 0 {
                    return Err(err("peek depth is negative"));
                }
                let p = *port as usize;
                let need = self.pops[p] as i64 + hi + 1;
                let need = u32::try_from(need).map_err(|_| err("peek depth overflows u32"))?;
                self.peek_need[p] = self.peek_need[p].max(need);
                self.census.channel_reads += 1;
                Ok((pty, None))
            }
            Expr::LoadArr { arr, index } => {
                let (aty, alen) = *self
                    .wf
                    .arrays
                    .get(arr.0 as usize)
                    .ok_or_else(|| err(format!("undeclared array {arr:?}")))?;
                let (ity, irange) = self.expr(index, depth + 1)?;
                if ity != ElemTy::I32 {
                    return Err(err("array index must be i32"));
                }
                check_static_bounds(irange, alen, "array load")?;
                self.census.array_ops += 1;
                Ok((aty, None))
            }
            Expr::LoadTable { table, index } => {
                let t = self
                    .wf
                    .tables
                    .get(table.0 as usize)
                    .ok_or_else(|| err(format!("undeclared table {table:?}")))?;
                let (ity, irange) = self.expr(index, depth + 1)?;
                if ity != ElemTy::I32 {
                    return Err(err("table index must be i32"));
                }
                check_static_bounds(irange, t.len() as u32, "table load")?;
                self.census.table_loads += 1;
                Ok((t.ty, None))
            }
            Expr::LoadState(id) => {
                let sty = self
                    .wf
                    .states
                    .get(id.0 as usize)
                    .map(|d| d.ty)
                    .ok_or_else(|| err(format!("undeclared state {id:?}")))?;
                self.census.alu += 1;
                Ok((sty, None))
            }
            Expr::Unary(op, inner) => {
                let (ity, irange) = self.expr(inner, depth + 1)?;
                if op.is_transcendental() {
                    self.census.transcendental += 1;
                } else {
                    self.census.alu += 1;
                }
                let out = match op {
                    UnOp::Neg => {
                        let r = irange
                            .and_then(|(lo, hi)| Some((hi.checked_neg()?, lo.checked_neg()?)));
                        return Ok((ity, if ity == ElemTy::I32 { r } else { None }));
                    }
                    UnOp::Abs => return Ok((ity, None)),
                    UnOp::Not => {
                        if ity != ElemTy::I32 {
                            return Err(err("bitwise not requires i32"));
                        }
                        (ElemTy::I32, None)
                    }
                    UnOp::Sin | UnOp::Cos | UnOp::Sqrt | UnOp::Floor => {
                        if ity != ElemTy::F32 {
                            return Err(err(format!("{op:?} requires f32")));
                        }
                        (ElemTy::F32, None)
                    }
                    UnOp::ToF32 => {
                        if ity != ElemTy::I32 {
                            return Err(err("to_f32 requires i32"));
                        }
                        (ElemTy::F32, None)
                    }
                    UnOp::ToI32 => {
                        if ity != ElemTy::F32 {
                            return Err(err("to_i32 requires f32"));
                        }
                        (ElemTy::I32, None)
                    }
                };
                Ok(out)
            }
            Expr::Binary(op, lhs, rhs) => {
                let (lty, lr) = self.expr(lhs, depth + 1)?;
                let (rty, rr) = self.expr(rhs, depth + 2)?;
                if lty != rty {
                    return Err(err(format!(
                        "binary operand type mismatch: {lty} {op:?} {rty}"
                    )));
                }
                if op.is_integer_only() && lty != ElemTy::I32 {
                    return Err(err(format!("{op:?} requires i32 operands")));
                }
                self.census.alu += 1;
                let out_ty = if op.is_comparison() { ElemTy::I32 } else { lty };
                let range = if lty == ElemTy::I32 {
                    fold_i32(*op, lr, rr)
                } else {
                    None
                };
                Ok((out_ty, range))
            }
        }
    }

    fn local_ty(&self, l: LocalId) -> Result<ElemTy> {
        self.wf
            .locals
            .get(l.0 as usize)
            .copied()
            .ok_or_else(|| err(format!("undeclared local {l:?}")))
    }

    fn input_ty(&self, port: u8) -> Result<ElemTy> {
        self.wf
            .input_ports
            .get(port as usize)
            .copied()
            .ok_or_else(|| err(format!("undeclared input port {port}")))
    }

    fn output_ty(&self, port: u8) -> Result<ElemTy> {
        self.wf
            .output_ports
            .get(port as usize)
            .copied()
            .ok_or_else(|| err(format!("undeclared output port {port}")))
    }
}

/// Rejects accesses the interval analysis proves out of bounds; unknown
/// indices are allowed and checked at run time.
fn check_static_bounds(range: Range, len: u32, what: &str) -> Result<()> {
    if let Some((lo, hi)) = range {
        if hi < 0 || lo >= i64::from(len) {
            return Err(err(format!(
                "{what} index range [{lo}, {hi}] is outside [0, {len})"
            )));
        }
    }
    Ok(())
}

/// Interval arithmetic over `i32` expressions; conservative (`None` when the
/// result cannot be bounded or an intermediate would overflow `i64`).
fn fold_i32(op: BinOp, l: Range, r: Range) -> Range {
    let (ll, lh) = l?;
    let (rl, rh) = r?;
    match op {
        BinOp::Add => Some((ll.checked_add(rl)?, lh.checked_add(rh)?)),
        BinOp::Sub => Some((ll.checked_sub(rh)?, lh.checked_sub(rl)?)),
        BinOp::Mul => {
            let candidates = [
                ll.checked_mul(rl)?,
                ll.checked_mul(rh)?,
                lh.checked_mul(rl)?,
                lh.checked_mul(rh)?,
            ];
            Some((
                *candidates.iter().min().expect("non-empty"),
                *candidates.iter().max().expect("non-empty"),
            ))
        }
        BinOp::Div if rl == rh && rl != 0 => {
            let candidates = [ll / rl, lh / rl];
            Some((
                *candidates.iter().min().expect("non-empty"),
                *candidates.iter().max().expect("non-empty"),
            ))
        }
        BinOp::Rem if rl == rh && rl > 0 && ll >= 0 => Some((0, (rl - 1).min(lh))),
        BinOp::Min => Some((ll.min(rl), lh.min(rh))),
        BinOp::Max => Some((ll.max(rl), lh.max(rh))),
        BinOp::Shl if rl == rh && (0..31).contains(&rl) && ll >= 0 => {
            Some((ll.checked_shl(rl as u32)?, lh.checked_shl(rl as u32)?))
        }
        BinOp::Shr if rl == rh && (0..31).contains(&rl) && ll >= 0 => Some((ll >> rl, lh >> rl)),
        BinOp::And if rl == rh && rl >= 0 && ll >= 0 => Some((0, rl.min(lh))),
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            // Fold comparisons over disjoint ranges to a constant.
            let always = |b: bool| Some((i64::from(b), i64::from(b)));
            match op {
                BinOp::Lt if lh < rl => always(true),
                BinOp::Lt if ll >= rh => always(false),
                BinOp::Le if lh <= rl => always(true),
                BinOp::Le if ll > rh => always(false),
                BinOp::Gt if ll > rh => always(true),
                BinOp::Gt if lh <= rl => always(false),
                BinOp::Ge if ll >= rh => always(true),
                BinOp::Ge if lh < rl => always(false),
                BinOp::Eq if ll == lh && rl == rh => always(ll == rl),
                BinOp::Eq if lh < rl || ll > rh => always(false),
                BinOp::Ne if ll == lh && rl == rh => always(ll != rl),
                BinOp::Ne if lh < rl || ll > rh => always(true),
                _ => Some((0, 1)),
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{FnBuilder, Table};

    fn simple_builder() -> FnBuilder {
        FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32])
    }

    #[test]
    fn rates_of_plain_filter() {
        let mut f = simple_builder();
        let x = f.local(ElemTy::I32);
        f.pop_into(0, x);
        f.push(0, Expr::local(x));
        f.push(0, Expr::local(x).add(Expr::i32(1)));
        let wf = f.build().unwrap();
        assert_eq!(wf.pop_rate(0), 1);
        assert_eq!(wf.push_rate(0), 2);
        assert_eq!(wf.peek_rate(0), 1);
        assert!(!wf.is_peeking());
    }

    #[test]
    fn rates_multiply_through_loops() {
        let mut f = simple_builder();
        f.for_loop(0, 3, |_, _| {
            vec![
                Stmt::Pop { port: 0, dst: None },
                Stmt::Push {
                    port: 0,
                    value: Expr::i32(7),
                },
                Stmt::Push {
                    port: 0,
                    value: Expr::i32(8),
                },
            ]
        });
        let wf = f.build().unwrap();
        assert_eq!(wf.pop_rate(0), 3);
        assert_eq!(wf.push_rate(0), 6);
    }

    #[test]
    fn peek_depth_via_loop_var_is_exact() {
        let mut f = simple_builder();
        f.for_loop(0, 4, |_, i| {
            vec![Stmt::Push {
                port: 0,
                value: Expr::peek(0, Expr::local(i)),
            }]
        });
        f.pop(0);
        let wf = f.build().unwrap();
        assert_eq!(wf.pop_rate(0), 1);
        assert_eq!(wf.peek_rate(0), 4);
        assert!(wf.is_peeking());
    }

    #[test]
    fn peek_after_pop_counts_from_current_head() {
        let mut f = simple_builder();
        f.pop(0);
        f.push(0, Expr::peek(0, Expr::i32(0)));
        let wf = f.build().unwrap();
        // One pop, then peek(0) touches absolute position 2 (1-based).
        assert_eq!(wf.peek_rate(0), 2);
    }

    #[test]
    fn unbounded_peek_rejected() {
        let mut f = simple_builder();
        let x = f.local(ElemTy::I32);
        f.pop_into(0, x);
        f.push(0, Expr::peek(0, Expr::local(x)));
        let e = f.build().unwrap_err();
        assert!(matches!(e, Error::InvalidWork(ref m) if m.contains("boundable")));
    }

    #[test]
    fn if_arms_must_match_rates() {
        let mut f = simple_builder();
        let x = f.local(ElemTy::I32);
        f.pop_into(0, x);
        f.if_else(
            Expr::local(x).gt(Expr::i32(0)),
            vec![Stmt::Push {
                port: 0,
                value: Expr::i32(1),
            }],
            vec![],
        );
        let e = f.build().unwrap_err();
        assert!(matches!(e, Error::InvalidWork(ref m) if m.contains("produce different")));
    }

    #[test]
    fn constant_condition_takes_one_arm() {
        let mut f = simple_builder();
        f.pop(0);
        // for i in 0..2: if i == 0 { push 1 } else { push 2; push 3 } — rates
        // differ per arm but the condition is constant inside the unrolled
        // analysis, so this is accepted and total push = 1 + 2 = 3.
        f.for_loop(0, 2, |_, i| {
            vec![Stmt::if_else(
                Expr::local(i).eq(Expr::i32(0)),
                vec![Stmt::Push {
                    port: 0,
                    value: Expr::i32(1),
                }],
                vec![
                    Stmt::Push {
                        port: 0,
                        value: Expr::i32(2),
                    },
                    Stmt::Push {
                        port: 0,
                        value: Expr::i32(3),
                    },
                ],
            )]
        });
        let wf = f.build().unwrap();
        assert_eq!(wf.push_rate(0), 3);
    }

    #[test]
    fn type_errors_are_rejected() {
        // f32 pushed to i32 port.
        let mut f = simple_builder();
        f.pop(0);
        f.push(0, Expr::f32(1.0));
        assert!(f.build().is_err());

        // Mixed-type binary.
        let mut f = simple_builder();
        f.pop(0);
        f.push(0, Expr::i32(1).add(Expr::f32(2.0)));
        assert!(f.build().is_err());

        // Bitwise op on floats.
        let mut f = FnBuilder::new(&[ElemTy::F32], &[ElemTy::F32]);
        let x = f.local(ElemTy::F32);
        f.pop_into(0, x);
        f.push(0, Expr::local(x).bitand(Expr::local(x)));
        assert!(f.build().is_err());
    }

    #[test]
    fn loop_var_write_rejected() {
        let mut f = simple_builder();
        f.pop(0);
        f.for_loop(0, 2, |_, i| {
            vec![
                Stmt::Assign(i, Expr::i32(0)),
                Stmt::Push {
                    port: 0,
                    value: Expr::i32(1),
                },
            ]
        });
        let e = f.build().unwrap_err();
        assert!(matches!(e, Error::InvalidWork(ref m) if m.contains("induction")));
    }

    #[test]
    fn static_out_of_bounds_rejected() {
        let mut f = simple_builder();
        let t = f.table(Table::i32(&[1, 2, 3]));
        f.pop(0);
        f.push(0, Expr::table(t, Expr::i32(5)));
        let e = f.build().unwrap_err();
        assert!(matches!(e, Error::InvalidWork(ref m) if m.contains("outside")));
    }

    #[test]
    fn undeclared_references_rejected() {
        let mut f = simple_builder();
        f.pop(0);
        f.push(0, Expr::local(LocalId(9)));
        assert!(f.build().is_err());

        let mut f = simple_builder();
        f.pop(1); // no such port
        f.push(0, Expr::i32(0));
        assert!(f.build().is_err());
    }

    #[test]
    fn state_is_validated_and_flagged() {
        use crate::ir::Scalar;
        // Well-typed state round trip.
        let mut f = simple_builder();
        let st = f.state(ElemTy::I32, Scalar::I32(0));
        let x = f.local(ElemTy::I32);
        f.pop_into(0, x);
        f.store_state(st, Expr::state(st).add(Expr::local(x)));
        f.push(0, Expr::state(st));
        let wf = f.build().unwrap();
        assert!(wf.info().has_state);
        assert!(wf.is_stateful());

        // Type mismatch on store.
        let mut f = simple_builder();
        let st = f.state(ElemTy::I32, Scalar::I32(0));
        f.pop(0);
        f.store_state(st, Expr::f32(1.0));
        f.push(0, Expr::i32(0));
        let e = f.build().unwrap_err();
        assert!(matches!(e, Error::InvalidWork(ref m) if m.contains("state store")));

        // Undeclared state id.
        let mut f = simple_builder();
        f.pop(0);
        f.push(0, Expr::state(crate::ir::StateId(3)));
        let e = f.build().unwrap_err();
        assert!(matches!(e, Error::InvalidWork(ref m) if m.contains("undeclared state")));

        // Stateless functions report no state.
        let mut f = simple_builder();
        f.pop(0);
        f.push(0, Expr::i32(1));
        let wf = f.build().unwrap();
        assert!(!wf.info().has_state);
        assert!(!wf.is_stateful());
    }

    #[test]
    fn census_counts_ops() {
        let mut f = simple_builder();
        let x = f.local(ElemTy::I32);
        f.pop_into(0, x);
        f.push(0, Expr::local(x).mul(Expr::i32(3)).add(Expr::i32(1)));
        let wf = f.build().unwrap();
        let c = wf.info().census;
        assert_eq!(c.channel_reads, 1);
        assert_eq!(c.channel_writes, 1);
        assert_eq!(c.alu, 2);
    }

    #[test]
    fn access_sites_enumerate_in_preorder_with_per_port_ordinals() {
        let mut f = simple_builder();
        let x = f.local(ElemTy::I32);
        f.pop_into(0, x);
        // push(peek(0, 0) + peek(0, 1)): depth subtrees carry no sites, the
        // two peeks precede their enclosing push.
        f.push(
            0,
            Expr::peek(0, Expr::i32(0)).add(Expr::peek(0, Expr::i32(1))),
        );
        f.for_loop(0, 4, |_, _| {
            vec![Stmt::Push {
                port: 0,
                value: Expr::i32(7),
            }]
        });
        let wf = f.build().unwrap();
        let sites = access_sites(&wf);
        let expect = [
            (AccessKind::Pop, 0u8, 0u32),
            (AccessKind::Peek, 0, 0),
            (AccessKind::Peek, 0, 1),
            (AccessKind::Push, 0, 0),
            (AccessKind::Push, 0, 1), // loop body is one syntactic site
        ];
        assert_eq!(sites.len(), expect.len());
        for (s, &(kind, port, ordinal)) in sites.iter().zip(&expect) {
            assert_eq!((s.kind, s.port, s.ordinal), (kind, port, ordinal));
        }
        assert_eq!(sites[1].to_string(), "peek[in0]#0");
        assert_eq!(sites[4].to_string(), "push[out0]#1");
    }

    #[test]
    fn register_estimate_grows_with_locals() {
        let mut small = simple_builder();
        small.pop(0);
        small.push(0, Expr::i32(0));
        let small = small.build().unwrap();

        let mut big = simple_builder();
        let locals: Vec<_> = (0..10).map(|_| big.local(ElemTy::I32)).collect();
        for &l in &locals {
            big.pop_into(0, l);
        }
        for &l in &locals {
            big.push(0, Expr::local(l));
        }
        let big = big.build().unwrap();
        assert!(big.info().reg_estimate > small.info().reg_estimate);
        assert!(small.info().reg_estimate >= REG_OVERHEAD);
    }
}
