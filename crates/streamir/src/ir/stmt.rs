//! Statements of the kernel IR.

use super::{ArrayId, Expr, LocalId, StateId};

/// A statement.
///
/// Control flow is structured and loop trip counts are compile-time
/// constants, which is what makes the static rate analysis in
/// [`super::validate`] exact rather than approximate.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `local = expr`.
    Assign(LocalId, Expr),
    /// `state = expr` — persists across firings (stateful filters).
    StoreState(StateId, Expr),
    /// `arr[index] = value`.
    Store {
        /// Destination scratch array.
        arr: ArrayId,
        /// Element index.
        index: Expr,
        /// Value to store.
        value: Expr,
    },
    /// `dst = pop()` on input port `port`; with `dst == None` the token is
    /// consumed and discarded.
    Pop {
        /// Input port index.
        port: u8,
        /// Optional destination local.
        dst: Option<LocalId>,
    },
    /// `push(value)` on output port `port`.
    Push {
        /// Output port index.
        port: u8,
        /// Token to append.
        value: Expr,
    },
    /// `for var in lo..hi { body }` with constant bounds. Empty when
    /// `hi <= lo`. The loop variable is an ordinary `i32` local that must
    /// not be written inside the body.
    For {
        /// Loop induction variable.
        var: LocalId,
        /// Inclusive lower bound.
        lo: i32,
        /// Exclusive upper bound.
        hi: i32,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `if cond != 0 { then_body } else { else_body }`.
    ///
    /// Both arms must push and pop identical token counts on every port so
    /// that rates stay static (the validator enforces this).
    If {
        /// `i32` condition, non-zero means true.
        cond: Expr,
        /// Taken when `cond != 0`.
        then_body: Vec<Stmt>,
        /// Taken when `cond == 0`.
        else_body: Vec<Stmt>,
    },
}

impl Stmt {
    /// Convenience constructor for a `for` loop.
    #[must_use]
    pub fn for_loop(var: LocalId, lo: i32, hi: i32, body: Vec<Stmt>) -> Stmt {
        Stmt::For { var, lo, hi, body }
    }

    /// Convenience constructor for a two-armed `if`.
    #[must_use]
    pub fn if_else(cond: Expr, then_body: Vec<Stmt>, else_body: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then_body,
            else_body,
        }
    }
}
