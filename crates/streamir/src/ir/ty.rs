//! Element types and runtime scalar values.

use std::fmt;

/// The element type of a channel, local, array, or table.
///
/// The StreamIt programs in the evaluated suite only move 32-bit integers
/// and floats, and modeling exactly 32-bit tokens keeps the buffer-size
/// accounting (Table II of the paper) byte-accurate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemTy {
    /// 32-bit signed integer.
    I32,
    /// 32-bit IEEE-754 float.
    F32,
}

impl ElemTy {
    /// Size of one token of this type in bytes (always 4).
    #[must_use]
    pub fn size_bytes(self) -> u32 {
        4
    }
}

impl fmt::Display for ElemTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElemTy::I32 => f.write_str("i32"),
            ElemTy::F32 => f.write_str("f32"),
        }
    }
}

/// A runtime scalar value flowing through channels.
///
/// `Scalar` is a plain tagged 32-bit value; equality on the `F32` variant is
/// bit-exact IEEE equality, which is what the executor-equivalence tests
/// (CPU interpreter vs. GPU simulator) rely on: both run the identical IR
/// with identical operation order, so results must match to the bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    /// A 32-bit signed integer token.
    I32(i32),
    /// A 32-bit float token.
    F32(f32),
}

impl Scalar {
    /// The element type of this value.
    #[must_use]
    pub fn ty(self) -> ElemTy {
        match self {
            Scalar::I32(_) => ElemTy::I32,
            Scalar::F32(_) => ElemTy::F32,
        }
    }

    /// The zero value of the given type.
    #[must_use]
    pub fn zero(ty: ElemTy) -> Scalar {
        match ty {
            ElemTy::I32 => Scalar::I32(0),
            ElemTy::F32 => Scalar::F32(0.0),
        }
    }

    /// Extracts the integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `I32`; validation guarantees this never
    /// happens for well-typed IR.
    #[must_use]
    pub fn as_i32(self) -> i32 {
        match self {
            Scalar::I32(v) => v,
            Scalar::F32(v) => panic!("expected i32 scalar, found f32 {v}"),
        }
    }

    /// Extracts the float payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `F32`.
    #[must_use]
    pub fn as_f32(self) -> f32 {
        match self {
            Scalar::F32(v) => v,
            Scalar::I32(v) => panic!("expected f32 scalar, found i32 {v}"),
        }
    }

    /// Raw 32-bit representation, used by the simulated device memory.
    #[must_use]
    pub fn to_bits(self) -> u32 {
        match self {
            Scalar::I32(v) => v as u32,
            Scalar::F32(v) => v.to_bits(),
        }
    }

    /// Reconstructs a value of type `ty` from its raw 32-bit representation.
    #[must_use]
    pub fn from_bits(ty: ElemTy, bits: u32) -> Scalar {
        match ty {
            ElemTy::I32 => Scalar::I32(bits as i32),
            ElemTy::F32 => Scalar::F32(f32::from_bits(bits)),
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::I32(v) => write!(f, "{v}"),
            Scalar::F32(v) => write!(f, "{v}"),
        }
    }
}

impl From<i32> for Scalar {
    fn from(v: i32) -> Self {
        Scalar::I32(v)
    }
}

impl From<f32> for Scalar {
    fn from(v: f32) -> Self {
        Scalar::F32(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips_through_bits() {
        for v in [0i32, 1, -1, i32::MAX, i32::MIN, 12345] {
            let s = Scalar::I32(v);
            assert_eq!(Scalar::from_bits(ElemTy::I32, s.to_bits()), s);
        }
        for v in [0.0f32, -0.0, 1.5, f32::MAX, f32::MIN_POSITIVE, -3.25e-9] {
            let s = Scalar::F32(v);
            assert_eq!(Scalar::from_bits(ElemTy::F32, s.to_bits()), s);
        }
    }

    #[test]
    fn scalar_ty_and_zero() {
        assert_eq!(Scalar::I32(3).ty(), ElemTy::I32);
        assert_eq!(Scalar::F32(3.0).ty(), ElemTy::F32);
        assert_eq!(Scalar::zero(ElemTy::I32), Scalar::I32(0));
        assert_eq!(Scalar::zero(ElemTy::F32), Scalar::F32(0.0));
    }

    #[test]
    #[should_panic(expected = "expected i32")]
    fn as_i32_panics_on_f32() {
        let _ = Scalar::F32(1.0).as_i32();
    }

    #[test]
    fn elem_ty_display_and_size() {
        assert_eq!(ElemTy::I32.to_string(), "i32");
        assert_eq!(ElemTy::F32.to_string(), "f32");
        assert_eq!(ElemTy::I32.size_bytes(), 4);
    }
}
