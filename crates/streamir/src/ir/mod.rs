//! The kernel IR: the language in which filter work functions are written.
//!
//! A [`WorkFunction`] is a typed, structured imperative program:
//!
//! * typed scalar **locals** ([`LocalId`]),
//! * per-thread scratch **arrays** ([`ArrayId`]),
//! * read-only constant **tables** ([`TableId`]) shared by all firings
//!   (FIR coefficients, DES S-boxes, twiddle factors, ...),
//! * statements: assignment, `for` over compile-time-constant bounds,
//!   structured `if`, and the StreamIt channel primitives
//!   [`Stmt::Push`], [`Stmt::Pop`], plus the pure [`Expr::Peek`].
//!
//! The design constraint driving every choice here is *static analysability*:
//! the SDF scheduler needs compile-time-constant push/pop/peek rates, the GPU
//! simulator needs to execute 32 threads in lock-step and observe every
//! memory address, and the profiler needs a per-thread register bound. See
//! [`validate`] for the analyses and [`interp`] for the reference
//! interpreter.

mod expr;
mod func;
mod pretty;
mod stmt;
mod ty;

pub mod interp;
pub mod validate;

pub use expr::{BinOp, Expr, UnOp};
pub use func::{identity, FnBuilder, StateDef, Table, WorkFunction};
pub use stmt::Stmt;
pub use ty::{ElemTy, Scalar};
pub use validate::{access_sites, AccessKind, AccessSite, OpCensus, PortRates, WorkInfo};

/// Identifies a scalar local variable within one [`WorkFunction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalId(pub u32);

/// Identifies a per-firing scratch array within one [`WorkFunction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

/// Identifies a read-only constant table within one [`WorkFunction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// Identifies a persistent state variable within one [`WorkFunction`].
///
/// State survives across firings, making the filter *stateful*: its
/// instances must execute in strict serial order (the paper's Section II
/// dependence between successive instance numbers; supporting these on
/// the GPU is the paper's stated future work, implemented here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);
