//! Pretty-printing of work functions — the IR dump used when debugging
//! filters, schedules, or simulator behaviour.

use std::fmt::Write as _;

use super::{BinOp, Expr, Stmt, UnOp, WorkFunction};

impl WorkFunction {
    /// Renders the work function as readable pseudo-code.
    ///
    /// # Examples
    ///
    /// ```
    /// use streamir::ir::{ElemTy, Expr, FnBuilder};
    /// let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
    /// let x = f.local(ElemTy::I32);
    /// f.pop_into(0, x);
    /// f.push(0, Expr::local(x).mul(Expr::i32(2)));
    /// let text = f.build()?.to_pretty();
    /// assert!(text.contains("l0 = pop(0)"));
    /// assert!(text.contains("push(0, (l0 * 2))"));
    /// # Ok::<(), streamir::Error>(())
    /// ```
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        let ins: Vec<String> = self.input_ports().iter().map(ToString::to_string).collect();
        let outs: Vec<String> = self
            .output_ports()
            .iter()
            .map(ToString::to_string)
            .collect();
        let _ = writeln!(out, "work ({}) -> ({}) {{", ins.join(", "), outs.join(", "));
        for (i, &ty) in self.locals().iter().enumerate() {
            let _ = writeln!(out, "  local l{i}: {ty};");
        }
        for (i, &(ty, len)) in self.arrays().iter().enumerate() {
            let _ = writeln!(out, "  array a{i}: [{ty}; {len}];");
        }
        for (i, t) in self.tables().iter().enumerate() {
            let _ = writeln!(out, "  table t{i}: [{}; {}];", t.ty, t.len());
        }
        for (i, st) in self.states().iter().enumerate() {
            let _ = writeln!(out, "  state s{i}: {} = {};", st.ty, st.init);
        }
        for s in self.body() {
            write_stmt(&mut out, s, 1);
        }
        let _ = writeln!(out, "}}");
        out
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_stmt(out: &mut String, s: &Stmt, depth: usize) {
    indent(out, depth);
    match s {
        Stmt::Assign(l, e) => {
            let _ = writeln!(out, "l{} = {};", l.0, expr(e));
        }
        Stmt::StoreState(id, e) => {
            let _ = writeln!(out, "s{} = {};", id.0, expr(e));
        }
        Stmt::Store { arr, index, value } => {
            let _ = writeln!(out, "a{}[{}] = {};", arr.0, expr(index), expr(value));
        }
        Stmt::Pop { port, dst } => match dst {
            Some(d) => {
                let _ = writeln!(out, "l{} = pop({port});", d.0);
            }
            None => {
                let _ = writeln!(out, "pop({port});");
            }
        },
        Stmt::Push { port, value } => {
            let _ = writeln!(out, "push({port}, {});", expr(value));
        }
        Stmt::For { var, lo, hi, body } => {
            let _ = writeln!(out, "for l{} in {lo}..{hi} {{", var.0);
            for b in body {
                write_stmt(out, b, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let _ = writeln!(out, "if {} {{", expr(cond));
            for b in then_body {
                write_stmt(out, b, depth + 1);
            }
            if !else_body.is_empty() {
                indent(out, depth);
                out.push_str("} else {\n");
                for b in else_body {
                    write_stmt(out, b, depth + 1);
                }
            }
            indent(out, depth);
            out.push_str("}\n");
        }
    }
}

fn expr(e: &Expr) -> String {
    match e {
        Expr::I32(v) => v.to_string(),
        Expr::F32(v) => format!("{v:?}"),
        Expr::Local(l) => format!("l{}", l.0),
        Expr::Peek { port, depth } => format!("peek({port}, {})", expr(depth)),
        Expr::LoadArr { arr, index } => format!("a{}[{}]", arr.0, expr(index)),
        Expr::LoadTable { table, index } => format!("t{}[{}]", table.0, expr(index)),
        Expr::LoadState(id) => format!("s{}", id.0),
        Expr::Unary(op, inner) => {
            let name = match op {
                UnOp::Neg => return format!("(-{})", expr(inner)),
                UnOp::Not => return format!("(!{})", expr(inner)),
                UnOp::Sin => "sin",
                UnOp::Cos => "cos",
                UnOp::Sqrt => "sqrt",
                UnOp::Abs => "abs",
                UnOp::Floor => "floor",
                UnOp::ToF32 => "f32",
                UnOp::ToI32 => "i32",
            };
            format!("{name}({})", expr(inner))
        }
        Expr::Binary(op, l, r) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::And => "&",
                BinOp::Or => "|",
                BinOp::Xor => "^",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
                BinOp::Ushr => ">>>",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Min => return format!("min({}, {})", expr(l), expr(r)),
                BinOp::Max => return format!("max({}, {})", expr(l), expr(r)),
            };
            format!("({} {sym} {})", expr(l), expr(r))
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::ir::{ElemTy, Expr, FnBuilder, Scalar, Stmt, Table};

    #[test]
    fn pretty_covers_all_constructs() {
        let mut f = FnBuilder::new(&[ElemTy::F32], &[ElemTy::F32]);
        let t = f.table(Table::f32(&[1.0, 2.0]));
        let a = f.array(ElemTy::F32, 4);
        let st = f.state(ElemTy::F32, Scalar::F32(0.5));
        let x = f.local(ElemTy::F32);
        f.pop_into(0, x);
        f.store(a, Expr::i32(0), Expr::local(x));
        f.store_state(st, Expr::state(st).add(Expr::local(x)));
        f.for_loop(0, 2, |_, j| {
            vec![Stmt::If {
                cond: Expr::local(j).lt(Expr::i32(1)),
                then_body: vec![Stmt::Push {
                    port: 0,
                    value: Expr::peek(0, Expr::local(j))
                        .mul(Expr::table(t, Expr::local(j)))
                        .max(Expr::load(a, Expr::i32(0))),
                }],
                else_body: vec![Stmt::Push {
                    port: 0,
                    value: Expr::state(st).neg(),
                }],
            }]
        });
        let text = f.build().unwrap().to_pretty();
        for needle in [
            "work (f32) -> (f32)",
            "state s0: f32 = 0.5",
            "l0 = pop(0);",
            "a0[0] = l0;",
            "s0 = (s0 + l0);",
            "for l1 in 0..2 {",
            "if (l1 < 1) {",
            "peek(0, l1)",
            "t0[l1]",
            "max(",
            "} else {",
            "(-s0)",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
