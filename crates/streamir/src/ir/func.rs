//! Work functions and their builder.

use crate::Result;

use super::validate::{self, WorkInfo};
use super::{ArrayId, ElemTy, Expr, LocalId, Scalar, StateId, Stmt, TableId};

/// A read-only constant table embedded in a work function.
///
/// Tables model the per-filter constant data StreamIt filters initialise in
/// their `init` functions: FIR coefficient vectors, DES S-boxes and
/// permutations, FFT twiddle factors, and so on. On the simulated GPU they
/// live in constant memory and are billed at cached-access cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Element type of the table.
    pub ty: ElemTy,
    /// Contents; every element must have type `ty`.
    pub values: Vec<Scalar>,
}

impl Table {
    /// Builds an `f32` table from a slice.
    #[must_use]
    pub fn f32(values: &[f32]) -> Table {
        Table {
            ty: ElemTy::F32,
            values: values.iter().map(|&v| Scalar::F32(v)).collect(),
        }
    }

    /// Builds an `i32` table from a slice.
    #[must_use]
    pub fn i32(values: &[i32]) -> Table {
        Table {
            ty: ElemTy::I32,
            values: values.iter().map(|&v| Scalar::I32(v)).collect(),
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the table has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A persistent state variable: type and initial value.
///
/// Declaring any state makes the filter *stateful*; its instances are
/// serialized by the scheduler and it executes single-threaded on the
/// device (the paper's future-work extension).
#[derive(Debug, Clone, PartialEq)]
pub struct StateDef {
    /// The state variable's type.
    pub ty: ElemTy,
    /// Value before the first firing.
    pub init: Scalar,
}

/// A validated filter work function.
///
/// Construct via [`FnBuilder`]; a `WorkFunction` value is guaranteed
/// well-typed with static channel rates, and carries the results of that
/// analysis in [`WorkFunction::info`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkFunction {
    pub(crate) input_ports: Vec<ElemTy>,
    pub(crate) output_ports: Vec<ElemTy>,
    pub(crate) locals: Vec<ElemTy>,
    pub(crate) arrays: Vec<(ElemTy, u32)>,
    pub(crate) tables: Vec<Table>,
    pub(crate) states: Vec<StateDef>,
    pub(crate) body: Vec<Stmt>,
    pub(crate) info: WorkInfo,
}

impl WorkFunction {
    /// Element types of the input ports.
    #[must_use]
    pub fn input_ports(&self) -> &[ElemTy] {
        &self.input_ports
    }

    /// Element types of the output ports.
    #[must_use]
    pub fn output_ports(&self) -> &[ElemTy] {
        &self.output_ports
    }

    /// Types of the scalar locals.
    #[must_use]
    pub fn locals(&self) -> &[ElemTy] {
        &self.locals
    }

    /// `(element type, length)` of each scratch array.
    #[must_use]
    pub fn arrays(&self) -> &[(ElemTy, u32)] {
        &self.arrays
    }

    /// The constant tables.
    #[must_use]
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// The persistent state variables.
    #[must_use]
    pub fn states(&self) -> &[StateDef] {
        &self.states
    }

    /// `true` when the filter carries state across firings.
    #[must_use]
    pub fn is_stateful(&self) -> bool {
        !self.states.is_empty()
    }

    /// A fresh state vector holding every state variable's initial value.
    #[must_use]
    pub fn initial_state(&self) -> Vec<Scalar> {
        self.states.iter().map(|s| s.init).collect()
    }

    /// The statement list.
    #[must_use]
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }

    /// Results of static analysis: rates, op census, register estimate.
    #[must_use]
    pub fn info(&self) -> &WorkInfo {
        &self.info
    }

    /// Tokens consumed per firing on input port `port`.
    #[must_use]
    pub fn pop_rate(&self, port: u8) -> u32 {
        self.info.inputs[port as usize].pop
    }

    /// Tokens produced per firing on output port `port`.
    #[must_use]
    pub fn push_rate(&self, port: u8) -> u32 {
        self.info.outputs[port as usize]
    }

    /// Peek depth (>= pop rate) on input port `port`: how many tokens must
    /// be present for the firing rule to allow execution.
    #[must_use]
    pub fn peek_rate(&self, port: u8) -> u32 {
        let r = &self.info.inputs[port as usize];
        r.peek.max(r.pop)
    }

    /// `true` if any port peeks deeper than it pops — the property Table I
    /// of the paper reports as "peeking filters".
    #[must_use]
    pub fn is_peeking(&self) -> bool {
        self.info.inputs.iter().any(|r| r.peek > r.pop)
    }
}

/// Incremental builder for [`WorkFunction`].
///
/// The builder hands out [`LocalId`]s, [`ArrayId`]s and [`TableId`]s, and
/// accumulates statements; nested bodies (loops, conditionals) are built as
/// plain `Vec<Stmt>` and attached with [`FnBuilder::for_loop`] /
/// [`FnBuilder::if_else`] or by pushing a [`Stmt`] directly via
/// [`FnBuilder::stmt`].
///
/// # Examples
///
/// ```
/// use streamir::ir::{ElemTy, Expr, FnBuilder};
///
/// // Moving-average filter: peeks 3, pops 1, pushes the mean.
/// let mut f = FnBuilder::new(&[ElemTy::F32], &[ElemTy::F32]);
/// let sum = f.local(ElemTy::F32);
/// f.assign(sum, Expr::peek(0, Expr::i32(0))
///     .add(Expr::peek(0, Expr::i32(1)))
///     .add(Expr::peek(0, Expr::i32(2))));
/// f.push(0, Expr::local(sum).div(Expr::f32(3.0)));
/// f.pop(0);
/// let work = f.build()?;
/// assert_eq!(work.pop_rate(0), 1);
/// assert_eq!(work.peek_rate(0), 3);
/// assert!(work.is_peeking());
/// # Ok::<(), streamir::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct FnBuilder {
    input_ports: Vec<ElemTy>,
    output_ports: Vec<ElemTy>,
    locals: Vec<ElemTy>,
    arrays: Vec<(ElemTy, u32)>,
    tables: Vec<Table>,
    states: Vec<StateDef>,
    body: Vec<Stmt>,
}

impl FnBuilder {
    /// Starts a work function with the given input/output port types.
    #[must_use]
    pub fn new(input_ports: &[ElemTy], output_ports: &[ElemTy]) -> FnBuilder {
        FnBuilder {
            input_ports: input_ports.to_vec(),
            output_ports: output_ports.to_vec(),
            locals: Vec::new(),
            arrays: Vec::new(),
            tables: Vec::new(),
            states: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Declares a scalar local of type `ty`.
    pub fn local(&mut self, ty: ElemTy) -> LocalId {
        let id = LocalId(self.locals.len() as u32);
        self.locals.push(ty);
        id
    }

    /// Declares a per-firing scratch array.
    pub fn array(&mut self, ty: ElemTy, len: u32) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push((ty, len));
        id
    }

    /// Declares a read-only constant table.
    pub fn table(&mut self, table: Table) -> TableId {
        let id = TableId(self.tables.len() as u32);
        self.tables.push(table);
        id
    }

    /// Declares a persistent state variable with its initial value; any
    /// state makes the filter stateful (serialized instances).
    ///
    /// # Panics
    ///
    /// Panics if `init`'s type differs from `ty`.
    pub fn state(&mut self, ty: ElemTy, init: Scalar) -> StateId {
        assert_eq!(init.ty(), ty, "state initial value type mismatch");
        let id = StateId(self.states.len() as u32);
        self.states.push(StateDef { ty, init });
        id
    }

    /// Appends `state = expr`.
    pub fn store_state(&mut self, id: StateId, expr: Expr) -> &mut Self {
        self.stmt(Stmt::StoreState(id, expr))
    }

    /// Appends an arbitrary statement.
    pub fn stmt(&mut self, s: Stmt) -> &mut Self {
        self.body.push(s);
        self
    }

    /// Appends `local = expr`.
    pub fn assign(&mut self, local: LocalId, expr: Expr) -> &mut Self {
        self.stmt(Stmt::Assign(local, expr))
    }

    /// Appends `arr[index] = value`.
    pub fn store(&mut self, arr: ArrayId, index: Expr, value: Expr) -> &mut Self {
        self.stmt(Stmt::Store { arr, index, value })
    }

    /// Appends a discarding `pop()` on `port`.
    pub fn pop(&mut self, port: u8) -> &mut Self {
        self.stmt(Stmt::Pop { port, dst: None })
    }

    /// Appends `dst = pop()` on `port`.
    pub fn pop_into(&mut self, port: u8, dst: LocalId) -> &mut Self {
        self.stmt(Stmt::Pop {
            port,
            dst: Some(dst),
        })
    }

    /// Appends `push(value)` on `port`.
    pub fn push(&mut self, port: u8, value: Expr) -> &mut Self {
        self.stmt(Stmt::Push { port, value })
    }

    /// Appends `for var in lo..hi { body }`, allocating the induction
    /// variable and passing it to `body_fn` which returns the loop body.
    pub fn for_loop(
        &mut self,
        lo: i32,
        hi: i32,
        body_fn: impl FnOnce(&mut FnBuilder, LocalId) -> Vec<Stmt>,
    ) -> &mut Self {
        let var = self.local(ElemTy::I32);
        let body = body_fn(self, var);
        self.stmt(Stmt::For { var, lo, hi, body })
    }

    /// Appends `if cond { then_body } else { else_body }`.
    pub fn if_else(&mut self, cond: Expr, then_body: Vec<Stmt>, else_body: Vec<Stmt>) -> &mut Self {
        self.stmt(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    /// Validates and produces the finished [`WorkFunction`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidWork`] if the body is ill-typed, references
    /// undeclared locals/arrays/tables/ports, has non-static channel rates
    /// (e.g. an `if` whose arms push different counts), writes a loop
    /// induction variable, or peeks at an unboundable depth.
    pub fn build(self) -> Result<WorkFunction> {
        let mut wf = WorkFunction {
            input_ports: self.input_ports,
            output_ports: self.output_ports,
            locals: self.locals,
            arrays: self.arrays,
            tables: self.tables,
            states: self.states,
            body: self.body,
            info: WorkInfo::default(),
        };
        wf.info = validate::validate(&wf)?;
        Ok(wf)
    }
}

/// Shorthand for building the identity filter (pop one token, push it).
///
/// # Examples
///
/// ```
/// let id = streamir::ir::identity(streamir::ir::ElemTy::F32);
/// assert_eq!(id.pop_rate(0), 1);
/// assert_eq!(id.push_rate(0), 1);
/// ```
#[must_use]
pub fn identity(ty: ElemTy) -> WorkFunction {
    let mut f = FnBuilder::new(&[ty], &[ty]);
    let x = f.local(ty);
    f.pop_into(0, x);
    f.push(0, Expr::local(x));
    f.build().expect("identity work function is always valid")
}
