//! Pure expressions of the kernel IR.

use super::{ArrayId, LocalId, StateId, TableId};

/// Binary operators.
///
/// Arithmetic operators are polymorphic over `i32`/`f32` (operands must have
/// equal types); bitwise and shift operators are `i32`-only; comparisons
/// accept either type and produce an `i32` in `{0, 1}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition. Integer addition wraps (matching GPU scalar units).
    Add,
    /// Subtraction (wrapping on `i32`).
    Sub,
    /// Multiplication (wrapping on `i32`).
    Mul,
    /// Division. Integer division truncates toward zero and traps on zero.
    Div,
    /// Remainder (`i32` only); traps on zero divisor.
    Rem,
    /// Bitwise AND (`i32` only).
    And,
    /// Bitwise OR (`i32` only).
    Or,
    /// Bitwise XOR (`i32` only).
    Xor,
    /// Logical left shift (`i32` only); shift amount is masked to 5 bits.
    Shl,
    /// Arithmetic right shift (`i32` only); shift amount masked to 5 bits.
    Shr,
    /// Logical (unsigned) right shift (`i32` only); amount masked to 5 bits.
    Ushr,
    /// Equality comparison, yields `i32` 0/1.
    Eq,
    /// Inequality comparison, yields `i32` 0/1.
    Ne,
    /// Less-than, yields `i32` 0/1.
    Lt,
    /// Less-or-equal, yields `i32` 0/1.
    Le,
    /// Greater-than, yields `i32` 0/1.
    Gt,
    /// Greater-or-equal, yields `i32` 0/1.
    Ge,
    /// Minimum of the operands.
    Min,
    /// Maximum of the operands.
    Max,
}

impl BinOp {
    /// `true` for comparison operators (result type `i32` regardless of
    /// operand type).
    #[must_use]
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// `true` for operators restricted to `i32` operands.
    #[must_use]
    pub fn is_integer_only(self) -> bool {
        matches!(
            self,
            BinOp::Rem
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::Shl
                | BinOp::Shr
                | BinOp::Ushr
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement (`i32` only).
    Not,
    /// Sine (`f32` only) — a "transcendental" op with its own cycle cost.
    Sin,
    /// Cosine (`f32` only).
    Cos,
    /// Square root (`f32` only).
    Sqrt,
    /// Absolute value.
    Abs,
    /// Floor (`f32` only, yields `f32`).
    Floor,
    /// Conversion `i32 -> f32`.
    ToF32,
    /// Conversion `f32 -> i32` (truncating; saturates at the `i32` range).
    ToI32,
}

impl UnOp {
    /// `true` for the operators the timing model bills at the slow
    /// special-function-unit rate.
    #[must_use]
    pub fn is_transcendental(self) -> bool {
        matches!(self, UnOp::Sin | UnOp::Cos | UnOp::Sqrt)
    }
}

/// A pure expression.
///
/// `Expr` deliberately excludes `pop` (which is side-effecting and lives in
/// [`super::Stmt::Pop`]) so that expression evaluation order can never change
/// observable channel state; `peek` is pure and therefore allowed.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// An `i32` literal.
    I32(i32),
    /// An `f32` literal.
    F32(f32),
    /// Value of a scalar local.
    Local(LocalId),
    /// `peek(depth)` on input port `port`: reads the `depth`-th
    /// not-yet-popped token without consuming it.
    Peek {
        /// Input port index.
        port: u8,
        /// Depth into the FIFO; must be statically boundable.
        depth: Box<Expr>,
    },
    /// Element load from a per-firing scratch array.
    LoadArr {
        /// The array.
        arr: ArrayId,
        /// Element index.
        index: Box<Expr>,
    },
    /// Element load from a read-only constant table.
    LoadTable {
        /// The table.
        table: TableId,
        /// Element index.
        index: Box<Expr>,
    },
    /// Value of a persistent state variable (stateful filters only).
    LoadState(StateId),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

// The builder methods intentionally mirror Rust operator names (`add`,
// `mul`, ...) to read like the expressions they construct; they take and
// return `Expr` by value rather than implementing the std::ops traits,
// which would force reference-based signatures unsuitable for a DSL.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// `i32` literal.
    #[must_use]
    pub fn i32(v: i32) -> Expr {
        Expr::I32(v)
    }

    /// `f32` literal.
    #[must_use]
    pub fn f32(v: f32) -> Expr {
        Expr::F32(v)
    }

    /// Reference to a local.
    #[must_use]
    pub fn local(l: LocalId) -> Expr {
        Expr::Local(l)
    }

    /// `peek(depth)` on input port `port`.
    #[must_use]
    pub fn peek(port: u8, depth: Expr) -> Expr {
        Expr::Peek {
            port,
            depth: Box::new(depth),
        }
    }

    /// Array element load.
    #[must_use]
    pub fn load(arr: ArrayId, index: Expr) -> Expr {
        Expr::LoadArr {
            arr,
            index: Box::new(index),
        }
    }

    /// Table element load.
    #[must_use]
    pub fn table(table: TableId, index: Expr) -> Expr {
        Expr::LoadTable {
            table,
            index: Box::new(index),
        }
    }

    /// Persistent state read.
    #[must_use]
    pub fn state(id: StateId) -> Expr {
        Expr::LoadState(id)
    }

    /// Applies a unary operator.
    #[must_use]
    pub fn unary(self, op: UnOp) -> Expr {
        Expr::Unary(op, Box::new(self))
    }

    /// Applies a binary operator.
    #[must_use]
    pub fn binary(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(self), Box::new(rhs))
    }

    /// `self + rhs`.
    #[must_use]
    pub fn add(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Add, rhs)
    }

    /// `self - rhs`.
    #[must_use]
    pub fn sub(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Sub, rhs)
    }

    /// `self * rhs`.
    #[must_use]
    pub fn mul(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Mul, rhs)
    }

    /// `self / rhs`.
    #[must_use]
    pub fn div(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Div, rhs)
    }

    /// `self % rhs` (`i32`).
    #[must_use]
    pub fn rem(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Rem, rhs)
    }

    /// Bitwise `self & rhs`.
    #[must_use]
    pub fn bitand(self, rhs: Expr) -> Expr {
        self.binary(BinOp::And, rhs)
    }

    /// Bitwise `self | rhs`.
    #[must_use]
    pub fn bitor(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Or, rhs)
    }

    /// Bitwise `self ^ rhs`.
    #[must_use]
    pub fn bitxor(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Xor, rhs)
    }

    /// `self << rhs`.
    #[must_use]
    pub fn shl(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Shl, rhs)
    }

    /// Arithmetic `self >> rhs`.
    #[must_use]
    pub fn shr(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Shr, rhs)
    }

    /// Logical `self >>> rhs`.
    #[must_use]
    pub fn ushr(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Ushr, rhs)
    }

    /// `self == rhs` as 0/1.
    #[must_use]
    pub fn eq(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Eq, rhs)
    }

    /// `self != rhs` as 0/1.
    #[must_use]
    pub fn ne(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Ne, rhs)
    }

    /// `self < rhs` as 0/1.
    #[must_use]
    pub fn lt(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Lt, rhs)
    }

    /// `self <= rhs` as 0/1.
    #[must_use]
    pub fn le(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Le, rhs)
    }

    /// `self > rhs` as 0/1.
    #[must_use]
    pub fn gt(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Gt, rhs)
    }

    /// `self >= rhs` as 0/1.
    #[must_use]
    pub fn ge(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Ge, rhs)
    }

    /// `min(self, rhs)`.
    #[must_use]
    pub fn min(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Min, rhs)
    }

    /// `max(self, rhs)`.
    #[must_use]
    pub fn max(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Max, rhs)
    }

    /// `-self`.
    #[must_use]
    pub fn neg(self) -> Expr {
        self.unary(UnOp::Neg)
    }

    /// Converts `i32 -> f32`.
    #[must_use]
    pub fn to_f32(self) -> Expr {
        self.unary(UnOp::ToF32)
    }

    /// Converts `f32 -> i32` (truncating).
    #[must_use]
    pub fn to_i32(self) -> Expr {
        self.unary(UnOp::ToI32)
    }
}

impl From<i32> for Expr {
    fn from(v: i32) -> Self {
        Expr::I32(v)
    }
}

impl From<f32> for Expr {
    fn from(v: f32) -> Self {
        Expr::F32(v)
    }
}

impl From<LocalId> for Expr {
    fn from(l: LocalId) -> Self {
        Expr::Local(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_produce_expected_trees() {
        let e = Expr::i32(1).add(Expr::i32(2));
        assert_eq!(
            e,
            Expr::Binary(BinOp::Add, Box::new(Expr::I32(1)), Box::new(Expr::I32(2)))
        );
        let l = LocalId(0);
        assert_eq!(Expr::from(l), Expr::Local(l));
    }

    #[test]
    fn op_classifications() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::Shl.is_integer_only());
        assert!(!BinOp::Mul.is_integer_only());
        assert!(UnOp::Sin.is_transcendental());
        assert!(!UnOp::Neg.is_transcendental());
    }
}
