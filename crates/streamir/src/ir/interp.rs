//! The reference interpreter for work functions.
//!
//! This is the semantic ground truth: the CPU executor runs it directly, and
//! the GPU simulator's warp-synchronous evaluator is tested for bit-exact
//! agreement with it. Execution is strict left-to-right; because `pop` is a
//! statement and expressions are pure, evaluation order can never change
//! observable channel state.

use crate::{Error, Result};

use super::{BinOp, Expr, OpCensus, Scalar, Stmt, UnOp, WorkFunction};

/// The channel endpoints a firing interacts with.
///
/// Implementations are provided by the executors (an in-memory FIFO for the
/// CPU path, simulated device buffers for the GPU path). A `&mut C` also
/// implements the trait, so executors can pass borrowed contexts.
pub trait Channels {
    /// Consumes and returns the next token on input `port`.
    ///
    /// The executor must only fire a filter whose firing rule is satisfied,
    /// so implementations may panic when empty.
    fn pop(&mut self, port: u8) -> Scalar;

    /// Reads the `depth`-th not-yet-popped token on input `port` without
    /// consuming it.
    fn peek(&self, port: u8, depth: u32) -> Scalar;

    /// Appends a token on output `port`.
    fn push(&mut self, port: u8, value: Scalar);
}

impl<C: Channels + ?Sized> Channels for &mut C {
    fn pop(&mut self, port: u8) -> Scalar {
        (**self).pop(port)
    }
    fn peek(&self, port: u8, depth: u32) -> Scalar {
        (**self).peek(port, depth)
    }
    fn push(&mut self, port: u8, value: Scalar) {
        (**self).push(port, value)
    }
}

/// Executes one firing of `wf` against `channels`, adding every dynamically
/// executed operation to `counts` (used by the executors' cycle models).
///
/// # Errors
///
/// Returns [`Error::Trap`] on integer division/remainder by zero, a
/// data-dependent out-of-bounds array/table index, or a negative runtime
/// peek depth.
pub fn execute<C: Channels>(
    wf: &WorkFunction,
    channels: &mut C,
    counts: &mut OpCensus,
) -> Result<()> {
    if wf.is_stateful() {
        return Err(Error::Trap(
            "stateful work function requires execute_stateful".into(),
        ));
    }
    let mut empty: Vec<Scalar> = Vec::new();
    execute_stateful(wf, channels, &mut empty, counts)
}

/// Executes one firing of a (possibly stateful) work function; `state`
/// must hold one value per declared state variable and persists across
/// calls — seed it with [`WorkFunction::initial_state`].
///
/// # Errors
///
/// As for [`execute`]; additionally traps if `state` has the wrong length.
pub fn execute_stateful<C: Channels>(
    wf: &WorkFunction,
    channels: &mut C,
    state: &mut Vec<Scalar>,
    counts: &mut OpCensus,
) -> Result<()> {
    if state.len() != wf.states().len() {
        return Err(Error::Trap(format!(
            "state vector has {} entries, filter declares {}",
            state.len(),
            wf.states().len()
        )));
    }
    let mut st = State {
        locals: wf.locals.iter().map(|&ty| Scalar::zero(ty)).collect(),
        arrays: wf
            .arrays
            .iter()
            .map(|&(ty, len)| vec![Scalar::zero(ty); len as usize])
            .collect(),
        persistent: state,
    };
    run_block(wf, &wf.body, &mut st, channels, counts)
}

struct State<'a> {
    locals: Vec<Scalar>,
    arrays: Vec<Vec<Scalar>>,
    persistent: &'a mut Vec<Scalar>,
}

fn trap(msg: impl Into<String>) -> Error {
    Error::Trap(msg.into())
}

fn run_block<C: Channels>(
    wf: &WorkFunction,
    stmts: &[Stmt],
    state: &mut State<'_>,
    channels: &mut C,
    counts: &mut OpCensus,
) -> Result<()> {
    for s in stmts {
        run_stmt(wf, s, state, channels, counts)?;
    }
    Ok(())
}

fn run_stmt<C: Channels>(
    wf: &WorkFunction,
    s: &Stmt,
    state: &mut State<'_>,
    channels: &mut C,
    counts: &mut OpCensus,
) -> Result<()> {
    match s {
        Stmt::Assign(local, e) => {
            let v = eval(wf, e, state, channels, counts)?;
            state.locals[local.0 as usize] = v;
            Ok(())
        }
        Stmt::StoreState(id, e) => {
            let v = eval(wf, e, state, channels, counts)?;
            state.persistent[id.0 as usize] = v;
            counts.alu += 1;
            Ok(())
        }
        Stmt::Store { arr, index, value } => {
            let i = eval(wf, index, state, channels, counts)?.as_i32();
            let v = eval(wf, value, state, channels, counts)?;
            let a = &mut state.arrays[arr.0 as usize];
            let slot = usize::try_from(i)
                .ok()
                .and_then(|i| a.get_mut(i))
                .ok_or_else(|| trap(format!("array store index {i} out of bounds")))?;
            *slot = v;
            counts.array_ops += 1;
            Ok(())
        }
        Stmt::Pop { port, dst } => {
            let v = channels.pop(*port);
            if let Some(dst) = dst {
                state.locals[dst.0 as usize] = v;
            }
            counts.channel_reads += 1;
            Ok(())
        }
        Stmt::Push { port, value } => {
            let v = eval(wf, value, state, channels, counts)?;
            channels.push(*port, v);
            counts.channel_writes += 1;
            Ok(())
        }
        Stmt::For { var, lo, hi, body } => {
            for i in *lo..*hi {
                state.locals[var.0 as usize] = Scalar::I32(i);
                counts.control += 1;
                run_block(wf, body, state, channels, counts)?;
            }
            Ok(())
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let c = eval(wf, cond, state, channels, counts)?.as_i32();
            counts.control += 1;
            if c != 0 {
                run_block(wf, then_body, state, channels, counts)
            } else {
                run_block(wf, else_body, state, channels, counts)
            }
        }
    }
}

fn eval<C: Channels>(
    wf: &WorkFunction,
    e: &Expr,
    state: &mut State<'_>,
    channels: &mut C,
    counts: &mut OpCensus,
) -> Result<Scalar> {
    match e {
        Expr::I32(v) => Ok(Scalar::I32(*v)),
        Expr::F32(v) => Ok(Scalar::F32(*v)),
        Expr::Local(l) => Ok(state.locals[l.0 as usize]),
        Expr::Peek { port, depth } => {
            let d = eval(wf, depth, state, channels, counts)?.as_i32();
            let d = u32::try_from(d).map_err(|_| trap(format!("negative peek depth {d}")))?;
            counts.channel_reads += 1;
            Ok(channels.peek(*port, d))
        }
        Expr::LoadArr { arr, index } => {
            let i = eval(wf, index, state, channels, counts)?.as_i32();
            let a = &state.arrays[arr.0 as usize];
            counts.array_ops += 1;
            usize::try_from(i)
                .ok()
                .and_then(|i| a.get(i))
                .copied()
                .ok_or_else(|| trap(format!("array load index {i} out of bounds")))
        }
        Expr::LoadTable { table, index } => {
            let i = eval(wf, index, state, channels, counts)?.as_i32();
            let t = &wf.tables[table.0 as usize];
            counts.table_loads += 1;
            usize::try_from(i)
                .ok()
                .and_then(|i| t.values.get(i))
                .copied()
                .ok_or_else(|| trap(format!("table load index {i} out of bounds")))
        }
        Expr::LoadState(id) => {
            counts.alu += 1;
            Ok(state.persistent[id.0 as usize])
        }
        Expr::Unary(op, inner) => {
            let v = eval(wf, inner, state, channels, counts)?;
            if op.is_transcendental() {
                counts.transcendental += 1;
            } else {
                counts.alu += 1;
            }
            eval_unary(*op, v)
        }
        Expr::Binary(op, lhs, rhs) => {
            let l = eval(wf, lhs, state, channels, counts)?;
            let r = eval(wf, rhs, state, channels, counts)?;
            counts.alu += 1;
            eval_binary(*op, l, r)
        }
    }
}

/// Applies a unary operator to an already-typed value.
///
/// Public so the GPU simulator's lock-step evaluator shares the exact same
/// scalar semantics.
pub fn eval_unary(op: UnOp, v: Scalar) -> Result<Scalar> {
    Ok(match (op, v) {
        (UnOp::Neg, Scalar::I32(v)) => Scalar::I32(v.wrapping_neg()),
        (UnOp::Neg, Scalar::F32(v)) => Scalar::F32(-v),
        (UnOp::Not, Scalar::I32(v)) => Scalar::I32(!v),
        (UnOp::Abs, Scalar::I32(v)) => Scalar::I32(v.wrapping_abs()),
        (UnOp::Abs, Scalar::F32(v)) => Scalar::F32(v.abs()),
        (UnOp::Sin, Scalar::F32(v)) => Scalar::F32(v.sin()),
        (UnOp::Cos, Scalar::F32(v)) => Scalar::F32(v.cos()),
        (UnOp::Sqrt, Scalar::F32(v)) => Scalar::F32(v.sqrt()),
        (UnOp::Floor, Scalar::F32(v)) => Scalar::F32(v.floor()),
        (UnOp::ToF32, Scalar::I32(v)) => Scalar::F32(v as f32),
        (UnOp::ToI32, Scalar::F32(v)) => Scalar::I32(v as i32),
        (op, v) => return Err(trap(format!("unary {op:?} applied to {} operand", v.ty()))),
    })
}

/// Applies a binary operator to two already-typed values.
///
/// Shared with the GPU simulator. Integer arithmetic wraps; shifts mask the
/// amount to 5 bits; `f32 -> i32` saturates — all matching scalar-unit
/// behaviour on the modeled device.
pub fn eval_binary(op: BinOp, l: Scalar, r: Scalar) -> Result<Scalar> {
    use BinOp::*;
    let bool_i32 = |b: bool| Scalar::I32(i32::from(b));
    Ok(match (l, r) {
        (Scalar::I32(a), Scalar::I32(b)) => match op {
            Add => Scalar::I32(a.wrapping_add(b)),
            Sub => Scalar::I32(a.wrapping_sub(b)),
            Mul => Scalar::I32(a.wrapping_mul(b)),
            Div => {
                if b == 0 {
                    return Err(trap("integer division by zero"));
                }
                Scalar::I32(a.overflowing_div(b).0)
            }
            Rem => {
                if b == 0 {
                    return Err(trap("integer remainder by zero"));
                }
                Scalar::I32(a.overflowing_rem(b).0)
            }
            And => Scalar::I32(a & b),
            Or => Scalar::I32(a | b),
            Xor => Scalar::I32(a ^ b),
            Shl => Scalar::I32(a.wrapping_shl(b as u32)),
            Shr => Scalar::I32(a.wrapping_shr(b as u32)),
            Ushr => Scalar::I32(((a as u32).wrapping_shr(b as u32)) as i32),
            Eq => bool_i32(a == b),
            Ne => bool_i32(a != b),
            Lt => bool_i32(a < b),
            Le => bool_i32(a <= b),
            Gt => bool_i32(a > b),
            Ge => bool_i32(a >= b),
            Min => Scalar::I32(a.min(b)),
            Max => Scalar::I32(a.max(b)),
        },
        (Scalar::F32(a), Scalar::F32(b)) => match op {
            Add => Scalar::F32(a + b),
            Sub => Scalar::F32(a - b),
            Mul => Scalar::F32(a * b),
            Div => Scalar::F32(a / b),
            Eq => bool_i32(a == b),
            Ne => bool_i32(a != b),
            Lt => bool_i32(a < b),
            Le => bool_i32(a <= b),
            Gt => bool_i32(a > b),
            Ge => bool_i32(a >= b),
            Min => Scalar::F32(a.min(b)),
            Max => Scalar::F32(a.max(b)),
            other => return Err(trap(format!("{other:?} applied to f32 operands"))),
        },
        _ => {
            return Err(trap(format!(
                "binary {op:?} applied to mixed-type operands"
            )))
        }
    })
}

/// A trivially simple [`Channels`] implementation over `Vec`s, used by unit
/// tests and the profiler's synthetic runs.
#[derive(Debug, Clone, Default)]
pub struct VecChannels {
    /// Per-input-port pending tokens (index 0 is the FIFO head).
    pub inputs: Vec<Vec<Scalar>>,
    /// Per-input-port read cursor (tokens before it are consumed).
    pub cursors: Vec<usize>,
    /// Per-output-port produced tokens.
    pub outputs: Vec<Vec<Scalar>>,
}

impl VecChannels {
    /// Creates channels with the given per-port input contents and
    /// `n_outputs` empty output buffers.
    #[must_use]
    pub fn new(inputs: Vec<Vec<Scalar>>, n_outputs: usize) -> VecChannels {
        let cursors = vec![0; inputs.len()];
        VecChannels {
            inputs,
            cursors,
            outputs: vec![Vec::new(); n_outputs],
        }
    }
}

impl Channels for VecChannels {
    fn pop(&mut self, port: u8) -> Scalar {
        let p = port as usize;
        let v = self.inputs[p][self.cursors[p]];
        self.cursors[p] += 1;
        v
    }

    fn peek(&self, port: u8, depth: u32) -> Scalar {
        let p = port as usize;
        self.inputs[p][self.cursors[p] + depth as usize]
    }

    fn push(&mut self, port: u8, value: Scalar) {
        self.outputs[port as usize].push(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ElemTy, FnBuilder, Table};

    fn run(wf: &WorkFunction, input: Vec<Scalar>) -> Result<Vec<Scalar>> {
        let mut ch = VecChannels::new(vec![input], wf.output_ports().len().max(1));
        let mut counts = OpCensus::default();
        execute(wf, &mut ch, &mut counts)?;
        Ok(ch.outputs.swap_remove(0))
    }

    #[test]
    fn doubler_doubles() {
        let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
        let x = f.local(ElemTy::I32);
        f.pop_into(0, x);
        f.push(0, Expr::local(x).mul(Expr::i32(2)));
        let wf = f.build().unwrap();
        let out = run(&wf, vec![Scalar::I32(21)]).unwrap();
        assert_eq!(out, vec![Scalar::I32(42)]);
    }

    #[test]
    fn loop_accumulates() {
        // Sum 4 popped values.
        let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
        let acc = f.local(ElemTy::I32);
        let x = f.local(ElemTy::I32);
        f.assign(acc, Expr::i32(0));
        f.for_loop(0, 4, |_, _| {
            vec![
                Stmt::Pop {
                    port: 0,
                    dst: Some(x),
                },
                Stmt::Assign(acc, Expr::local(acc).add(Expr::local(x))),
            ]
        });
        f.push(0, Expr::local(acc));
        let wf = f.build().unwrap();
        let out = run(&wf, (1..=4).map(Scalar::I32).collect()).unwrap();
        assert_eq!(out, vec![Scalar::I32(10)]);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
        f.push(0, Expr::peek(0, Expr::i32(1)));
        f.pop(0);
        let wf = f.build().unwrap();
        let out = run(&wf, vec![Scalar::I32(10), Scalar::I32(20)]).unwrap();
        assert_eq!(out, vec![Scalar::I32(20)]);
    }

    #[test]
    fn branch_selects_arm() {
        let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
        let x = f.local(ElemTy::I32);
        f.pop_into(0, x);
        f.if_else(
            Expr::local(x).ge(Expr::i32(0)),
            vec![Stmt::Push {
                port: 0,
                value: Expr::local(x),
            }],
            vec![Stmt::Push {
                port: 0,
                value: Expr::local(x).neg(),
            }],
        );
        let wf = f.build().unwrap();
        assert_eq!(
            run(&wf, vec![Scalar::I32(5)]).unwrap(),
            vec![Scalar::I32(5)]
        );
        assert_eq!(
            run(&wf, vec![Scalar::I32(-5)]).unwrap(),
            vec![Scalar::I32(5)]
        );
    }

    #[test]
    fn arrays_and_tables_work() {
        let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
        let a = f.array(ElemTy::I32, 4);
        let t = f.table(Table::i32(&[100, 200, 300, 400]));
        f.for_loop(0, 4, |_, i| {
            vec![Stmt::Store {
                arr: a,
                index: Expr::local(i),
                value: Expr::table(t, Expr::local(i)),
            }]
        });
        f.pop(0);
        f.push(0, Expr::load(a, Expr::i32(2)));
        let wf = f.build().unwrap();
        let out = run(&wf, vec![Scalar::I32(0)]).unwrap();
        assert_eq!(out, vec![Scalar::I32(300)]);
    }

    #[test]
    fn division_by_zero_traps() {
        let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
        let x = f.local(ElemTy::I32);
        f.pop_into(0, x);
        f.push(0, Expr::i32(1).div(Expr::local(x)));
        let wf = f.build().unwrap();
        let e = run(&wf, vec![Scalar::I32(0)]).unwrap_err();
        assert!(matches!(e, Error::Trap(ref m) if m.contains("division by zero")));
    }

    #[test]
    fn dynamic_oob_array_traps() {
        let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
        let a = f.array(ElemTy::I32, 2);
        let x = f.local(ElemTy::I32);
        f.pop_into(0, x);
        f.push(0, Expr::load(a, Expr::local(x)));
        let wf = f.build().unwrap();
        let e = run(&wf, vec![Scalar::I32(7)]).unwrap_err();
        assert!(matches!(e, Error::Trap(ref m) if m.contains("out of bounds")));
    }

    #[test]
    fn wrapping_and_shift_semantics() {
        assert_eq!(
            eval_binary(BinOp::Add, Scalar::I32(i32::MAX), Scalar::I32(1)).unwrap(),
            Scalar::I32(i32::MIN)
        );
        assert_eq!(
            eval_binary(BinOp::Shl, Scalar::I32(1), Scalar::I32(33)).unwrap(),
            Scalar::I32(2) // amount masked to 5 bits
        );
        assert_eq!(
            eval_binary(BinOp::Ushr, Scalar::I32(-1), Scalar::I32(28)).unwrap(),
            Scalar::I32(0xF)
        );
        assert_eq!(
            eval_unary(UnOp::ToI32, Scalar::F32(1e20)).unwrap(),
            Scalar::I32(i32::MAX) // saturating conversion
        );
    }

    #[test]
    fn dynamic_counts_match_static_census_for_straightline() {
        let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
        let x = f.local(ElemTy::I32);
        f.pop_into(0, x);
        f.push(0, Expr::local(x).mul(Expr::i32(3)).add(Expr::i32(1)));
        let wf = f.build().unwrap();
        let mut ch = VecChannels::new(vec![vec![Scalar::I32(1)]], 1);
        let mut counts = OpCensus::default();
        execute(&wf, &mut ch, &mut counts).unwrap();
        assert_eq!(counts, wf.info().census);
    }
}
