//! Single-threaded CPU execution of flat stream graphs.
//!
//! This is the reproduction's stand-in for the paper's baseline: the
//! StreamIt uniprocessor backend compiled with `gcc -O3` and run on one
//! thread of a Xeon. Filters execute through the reference interpreter in
//! a minimum-latency steady-state schedule; time is derived from the
//! dynamically counted operations through [`CpuCostModel`].
//!
//! The same executor doubles as the *functional oracle*: the GPU simulator
//! must produce bit-identical outputs on every benchmark.

use crate::channel::Fifo;
use crate::graph::{FlatGraph, NodeId};
use crate::ir::interp::{self, Channels};
use crate::ir::{OpCensus, Scalar};
use crate::sdf::SteadyState;
use crate::{Error, Result};

/// Per-operation-class cycle costs for the modeled host CPU.
///
/// The defaults ([`CpuCostModel::xeon_2_83ghz`]) model the paper's host: a
/// 2.83 GHz Xeon running scalar code whose working set largely hits in
/// cache. Channel traffic costs more than register arithmetic, matching the
/// buffer-shuffling profile of StreamIt-generated uniprocessor code.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuCostModel {
    /// Core clock in Hz; converts cycles to seconds.
    pub clock_hz: f64,
    /// Cycles per plain ALU operation.
    pub alu: f64,
    /// Cycles per sin/cos/sqrt.
    pub transcendental: f64,
    /// Cycles per channel pop/peek (buffer load + index update).
    pub channel_read: f64,
    /// Cycles per channel push (buffer store + index update).
    pub channel_write: f64,
    /// Cycles per scratch-array access.
    pub array_op: f64,
    /// Cycles per constant-table load.
    pub table_load: f64,
    /// Cycles per control operation (loop back-edge, branch).
    pub control: f64,
    /// Fixed cycles per filter firing (call + schedule dispatch).
    pub firing_overhead: f64,
}

impl CpuCostModel {
    /// The paper's host machine: dual quad-core Xeon at 2.83 GHz, of which
    /// the baseline uses a single thread.
    #[must_use]
    pub fn xeon_2_83ghz() -> CpuCostModel {
        CpuCostModel {
            clock_hz: 2.83e9,
            alu: 1.0,
            transcendental: 18.0,
            channel_read: 2.0,
            channel_write: 2.0,
            array_op: 1.5,
            table_load: 1.5,
            control: 1.0,
            firing_overhead: 12.0,
        }
    }

    /// Cycles consumed by the given operation counts plus `firings` firing
    /// overheads.
    #[must_use]
    pub fn cycles(&self, counts: &OpCensus, firings: u64) -> f64 {
        counts.alu as f64 * self.alu
            + counts.transcendental as f64 * self.transcendental
            + counts.channel_reads as f64 * self.channel_read
            + counts.channel_writes as f64 * self.channel_write
            + counts.array_ops as f64 * self.array_op
            + counts.table_loads as f64 * self.table_load
            + counts.control as f64 * self.control
            + firings as f64 * self.firing_overhead
    }
}

impl Default for CpuCostModel {
    fn default() -> Self {
        CpuCostModel::xeon_2_83ghz()
    }
}

/// Outcome of a CPU run.
#[derive(Debug, Clone)]
pub struct CpuRun {
    /// Tokens collected at the graph output, in order.
    pub outputs: Vec<Scalar>,
    /// Dynamic operation counts over the *steady* iterations (the
    /// initialization phase is excluded from timing, as it is amortized
    /// away in the paper's long-running measurements).
    pub counts: OpCensus,
    /// Filter firings in the steady iterations.
    pub firings: u64,
    /// Modeled cycles for the steady iterations.
    pub cycles: f64,
    /// Modeled wall time in seconds for the steady iterations.
    pub time_secs: f64,
}

/// Executes `iterations` steady-state iterations of `graph` (after running
/// the initialization schedule once), consuming `input` at the graph input
/// and collecting the graph output.
///
/// # Errors
///
/// * [`Error::InsufficientInput`] if `input` has fewer tokens than the
///   init phase plus `iterations` iterations consume.
/// * [`Error::Trap`] if a work function traps.
pub fn run(
    graph: &FlatGraph,
    steady: &SteadyState,
    iterations: u64,
    input: &[Scalar],
    model: &CpuCostModel,
) -> Result<CpuRun> {
    let needed =
        steady.input_tokens_for_init(graph) + iterations * steady.input_tokens_per_iteration(graph);
    if (input.len() as u64) < needed {
        return Err(Error::InsufficientInput {
            needed: needed as usize,
            got: input.len(),
        });
    }

    let mut fifos: Vec<Fifo> = graph
        .edges()
        .iter()
        .map(|e| {
            let mut f = Fifo::new(e.elem);
            f.extend(e.initial.iter().copied());
            f
        })
        .collect();
    let mut states: Vec<Vec<Scalar>> = graph
        .nodes()
        .iter()
        .map(|n| n.work.initial_state())
        .collect();
    let mut cursor = 0usize;
    let mut outputs = Vec::new();

    // Initialization phase: not timed.
    let mut scratch = OpCensus::default();
    for &node in steady.init_order() {
        fire(
            graph,
            node,
            &mut fifos,
            &mut states,
            input,
            &mut cursor,
            &mut outputs,
            &mut scratch,
        )?;
    }

    // Steady phase: timed.
    let mut counts = OpCensus::default();
    let mut firings = 0u64;
    for _ in 0..iterations {
        for &node in steady.firing_order() {
            fire(
                graph,
                node,
                &mut fifos,
                &mut states,
                input,
                &mut cursor,
                &mut outputs,
                &mut counts,
            )?;
            firings += 1;
        }
    }

    let cycles = model.cycles(&counts, firings);
    Ok(CpuRun {
        outputs,
        counts,
        firings,
        cycles,
        time_secs: cycles / model.clock_hz,
    })
}

/// Where an input port reads from / an output port writes to.
#[derive(Clone, Copy)]
enum Binding {
    Edge(usize),
    External,
}

struct ExecChannels<'a> {
    in_ports: Vec<Binding>,
    out_ports: Vec<Binding>,
    fifos: &'a mut [Fifo],
    input: &'a [Scalar],
    cursor: &'a mut usize,
    outputs: &'a mut Vec<Scalar>,
}

impl Channels for ExecChannels<'_> {
    fn pop(&mut self, port: u8) -> Scalar {
        match self.in_ports[port as usize] {
            Binding::Edge(i) => self.fifos[i].pop().expect("firing rule guarantees tokens"),
            Binding::External => {
                let v = self.input[*self.cursor];
                *self.cursor += 1;
                v
            }
        }
    }

    fn peek(&self, port: u8, depth: u32) -> Scalar {
        match self.in_ports[port as usize] {
            Binding::Edge(i) => self.fifos[i]
                .peek(depth)
                .expect("firing rule guarantees peek depth"),
            Binding::External => self.input[*self.cursor + depth as usize],
        }
    }

    fn push(&mut self, port: u8, value: Scalar) {
        match self.out_ports[port as usize] {
            Binding::Edge(i) => self.fifos[i].push(value),
            Binding::External => self.outputs.push(value),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn fire(
    graph: &FlatGraph,
    node: NodeId,
    fifos: &mut [Fifo],
    states: &mut [Vec<Scalar>],
    input: &[Scalar],
    cursor: &mut usize,
    outputs: &mut Vec<Scalar>,
    counts: &mut OpCensus,
) -> Result<()> {
    let work = &graph.node(node).work;
    let mut in_ports = vec![Binding::External; work.input_ports().len()];
    for e in graph.in_edges(node) {
        let edge = graph.edge(e);
        in_ports[edge.dst_port as usize] = Binding::Edge(e.0 as usize);
    }
    let mut out_ports = vec![Binding::External; work.output_ports().len()];
    for e in graph.out_edges(node) {
        let edge = graph.edge(e);
        out_ports[edge.src_port as usize] = Binding::Edge(e.0 as usize);
    }
    let mut ch = ExecChannels {
        in_ports,
        out_ports,
        fifos,
        input,
        cursor,
        outputs,
    };
    interp::execute_stateful(work, &mut ch, &mut states[node.0 as usize], counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{FilterSpec, SplitterKind, StreamSpec};
    use crate::ir::{ElemTy, Expr, FnBuilder};
    use crate::sdf;

    fn map_filter(name: &str, f: impl FnOnce(Expr) -> Expr) -> StreamSpec {
        let mut b = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
        let x = b.local(ElemTy::I32);
        b.pop_into(0, x);
        b.push(0, f(Expr::local(x)));
        StreamSpec::filter(FilterSpec::new(name, b.build().unwrap()))
    }

    #[test]
    fn pipeline_composes_functions() {
        // (x * 2) + 3 over 8 tokens.
        let spec = StreamSpec::pipeline(vec![
            map_filter("dbl", |x| x.mul(Expr::i32(2))),
            map_filter("add3", |x| x.add(Expr::i32(3))),
        ]);
        let g = spec.flatten().unwrap();
        let s = sdf::solve(&g).unwrap();
        let input: Vec<Scalar> = (0..8).map(Scalar::I32).collect();
        let run = run(&g, &s, 8, &input, &CpuCostModel::default()).unwrap();
        let expect: Vec<Scalar> = (0..8).map(|x| Scalar::I32(x * 2 + 3)).collect();
        assert_eq!(run.outputs, expect);
        assert!(run.time_secs > 0.0);
        assert_eq!(run.firings, 16);
    }

    #[test]
    fn split_join_round_robin_reorders_correctly() {
        // RR(1,1) split, one branch doubles, the other negates, RR(1,1) join:
        // even-index tokens double, odd-index tokens negate.
        let spec = StreamSpec::split_join(
            SplitterKind::RoundRobin(vec![1, 1]),
            vec![
                map_filter("dbl", |x| x.mul(Expr::i32(2))),
                map_filter("neg", |x| x.neg()),
            ],
            vec![1, 1],
        );
        let g = spec.flatten().unwrap();
        let s = sdf::solve(&g).unwrap();
        let input: Vec<Scalar> = (1..=6).map(Scalar::I32).collect();
        let run = run(&g, &s, 3, &input, &CpuCostModel::default()).unwrap();
        assert_eq!(
            run.outputs,
            vec![
                Scalar::I32(2),
                Scalar::I32(-2),
                Scalar::I32(6),
                Scalar::I32(-4),
                Scalar::I32(10),
                Scalar::I32(-6),
            ]
        );
    }

    #[test]
    fn duplicate_split_feeds_both_branches() {
        let spec = StreamSpec::split_join(
            SplitterKind::Duplicate,
            vec![
                map_filter("id", |x| x),
                map_filter("sq", |x| x.clone().mul(x)),
            ],
            vec![1, 1],
        );
        let g = spec.flatten().unwrap();
        let s = sdf::solve(&g).unwrap();
        let input = vec![Scalar::I32(3)];
        let run = run(&g, &s, 1, &input, &CpuCostModel::default()).unwrap();
        assert_eq!(run.outputs, vec![Scalar::I32(3), Scalar::I32(9)]);
    }

    #[test]
    fn peeking_moving_average() {
        // 3-tap moving sum: out[i] = in[i] + in[i+1] + in[i+2].
        let mut b = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
        b.push(
            0,
            Expr::peek(0, Expr::i32(0))
                .add(Expr::peek(0, Expr::i32(1)))
                .add(Expr::peek(0, Expr::i32(2))),
        );
        b.pop(0);
        let spec = StreamSpec::filter(FilterSpec::new("ma3", b.build().unwrap()));
        let g = spec.flatten().unwrap();
        let s = sdf::solve(&g).unwrap();
        let input: Vec<Scalar> = (1..=10).map(Scalar::I32).collect();
        let run = run(&g, &s, 8, &input, &CpuCostModel::default()).unwrap();
        let expect: Vec<Scalar> = (1..=8)
            .map(|i| Scalar::I32(i + (i + 1) + (i + 2)))
            .collect();
        assert_eq!(run.outputs, expect);
    }

    #[test]
    fn insufficient_input_is_reported() {
        let spec = map_filter("id", |x| x);
        let g = spec.flatten().unwrap();
        let s = sdf::solve(&g).unwrap();
        let e = run(&g, &s, 10, &[Scalar::I32(1)], &CpuCostModel::default()).unwrap_err();
        assert!(matches!(e, Error::InsufficientInput { needed: 10, got: 1 }));
    }

    #[test]
    fn cost_model_scales_with_iterations() {
        let spec = map_filter("id", |x| x);
        let g = spec.flatten().unwrap();
        let s = sdf::solve(&g).unwrap();
        let input: Vec<Scalar> = (0..100).map(Scalar::I32).collect();
        let m = CpuCostModel::default();
        let t10 = run(&g, &s, 10, &input, &m).unwrap().time_secs;
        let t100 = run(&g, &s, 100, &input, &m).unwrap().time_secs;
        assert!((t100 / t10 - 10.0).abs() < 1e-9);
    }
}
