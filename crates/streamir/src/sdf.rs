//! Synchronous-dataflow steady-state machinery.
//!
//! The repetition vector `k_v` assigns each node a firing count such that
//! every channel is balanced across one *steady-state iteration*:
//! `k_u × push(u,v) == k_v × pop(u,v)` for every channel `(u, v)`. The
//! primitive vector (component gcd 1) is computed exactly with rational
//! propagation; inconsistent graphs are diagnosed with the offending
//! channel.
//!
//! Peeking filters consume fewer tokens than their firing rule requires, so
//! the steady state only cycles once each such channel holds `peek - pop`
//! slack tokens. [`solve`] therefore also computes an **initialization
//! schedule** (StreamIt's "prework" phase): per-node firing counts that
//! deposit exactly that slack, found as the least fixpoint of the per-edge
//! inequalities `m_uv + init_u·push ≥ init_v·pop + (peek_v - pop_v)`.
//! Executors run the init schedule once, then any number of steady-state
//! iterations.

use numeric::{gcd, lcm_all, Rational};

use crate::graph::{EdgeId, FlatGraph, NodeId};
use crate::{Error, Result};

/// The solved steady state of a flat graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SteadyState {
    reps: Vec<u32>,
    init: Vec<u32>,
    init_order: Vec<NodeId>,
    firing_order: Vec<NodeId>,
}

impl SteadyState {
    /// The primitive repetition vector, indexed by [`NodeId`].
    #[must_use]
    pub fn repetitions(&self) -> &[u32] {
        &self.reps
    }

    /// Steady-state firing count of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn reps(&self, node: NodeId) -> u32 {
        self.reps[node.0 as usize]
    }

    /// Initialization firing counts (all zero for non-peeking graphs).
    #[must_use]
    pub fn init_repetitions(&self) -> &[u32] {
        &self.init
    }

    /// A valid firing sequence for the initialization phase.
    #[must_use]
    pub fn init_order(&self) -> &[NodeId] {
        &self.init_order
    }

    /// A valid minimum-latency firing sequence for one steady-state
    /// iteration (each node appears `k_v` times), starting from the
    /// post-initialization channel state.
    #[must_use]
    pub fn firing_order(&self) -> &[NodeId] {
        &self.firing_order
    }

    /// Tokens consumed from the external input per steady-state iteration.
    #[must_use]
    pub fn input_tokens_per_iteration(&self, graph: &FlatGraph) -> u64 {
        graph.input().map_or(0, |n| {
            u64::from(self.reps(n)) * u64::from(graph.node(n).work.pop_rate(0))
        })
    }

    /// Tokens consumed from the external input by the initialization phase.
    #[must_use]
    pub fn input_tokens_for_init(&self, graph: &FlatGraph) -> u64 {
        graph.input().map_or(0, |n| {
            u64::from(self.init[n.0 as usize]) * u64::from(graph.node(n).work.pop_rate(0))
        })
    }

    /// Tokens produced on the external output per steady-state iteration.
    #[must_use]
    pub fn output_tokens_per_iteration(&self, graph: &FlatGraph) -> u64 {
        graph.output().map_or(0, |n| {
            u64::from(self.reps(n)) * u64::from(graph.node(n).work.push_rate(0))
        })
    }

    /// Tokens crossing channel `e` per steady-state iteration
    /// (`k_u × O_uv`, equivalently `k_v × I_uv`).
    #[must_use]
    pub fn edge_tokens_per_iteration(&self, graph: &FlatGraph, e: EdgeId) -> u64 {
        let edge = graph.edge(e);
        u64::from(self.reps(edge.src)) * u64::from(graph.push_rate(e))
    }

    /// Slack tokens resident on channel `e` while the steady state cycles:
    /// the channel's initial tokens plus whatever the init phase deposited.
    #[must_use]
    pub fn edge_resident_tokens(&self, graph: &FlatGraph, e: EdgeId) -> u64 {
        let edge = graph.edge(e);
        let produced = edge.initial.len() as u64
            + u64::from(self.init[edge.src.0 as usize]) * u64::from(graph.push_rate(e));
        let consumed = u64::from(self.init[edge.dst.0 as usize]) * u64::from(graph.pop_rate(e));
        produced - consumed
    }
}

/// Solves the balance equations, computes the initialization schedule, and
/// verifies one steady iteration can execute.
///
/// # Errors
///
/// * [`Error::InconsistentRates`] if the balance equations conflict.
/// * [`Error::Deadlock`] if no schedule exists with the given initial
///   tokens (e.g. a feedback loop primed with too few tokens).
/// * [`Error::InvalidGraph`] if the graph is disconnected.
pub fn solve(graph: &FlatGraph) -> Result<SteadyState> {
    let reps = repetition_vector(graph)?;
    let init = init_vector(graph, &reps)?;
    let mut tokens: Vec<u64> = graph
        .edges()
        .iter()
        .map(|e| e.initial.len() as u64)
        .collect();
    let init_order = greedy_order(graph, &init, &mut tokens)?;
    let firing_order = greedy_order(graph, &reps, &mut tokens)?;
    Ok(SteadyState {
        reps,
        init,
        init_order,
        firing_order,
    })
}

/// Solves the balance equations alone.
///
/// # Errors
///
/// As for [`solve`], minus the deadlock check.
pub fn repetition_vector(graph: &FlatGraph) -> Result<Vec<u32>> {
    let n = graph.len();
    assert!(n > 0, "cannot solve an empty graph");
    let mut rates: Vec<Option<Rational>> = vec![None; n];
    rates[0] = Some(Rational::ONE);
    // Propagate firing-ratio constraints along channels (both directions).
    let mut stack = vec![NodeId(0)];
    while let Some(u) = stack.pop() {
        let ru = rates[u.0 as usize].expect("visited nodes have rates");
        for (i, e) in graph.edges().iter().enumerate() {
            let eid = EdgeId(i as u32);
            let (other, ratio) = if e.src == u {
                // k_src * push == k_dst * pop  =>  k_dst = k_src * push/pop
                (
                    e.dst,
                    Rational::from(graph.push_rate(eid)) / Rational::from(graph.pop_rate(eid)),
                )
            } else if e.dst == u {
                (
                    e.src,
                    Rational::from(graph.pop_rate(eid)) / Rational::from(graph.push_rate(eid)),
                )
            } else {
                continue;
            };
            let expected = ru * ratio;
            match rates[other.0 as usize] {
                None => {
                    rates[other.0 as usize] = Some(expected);
                    stack.push(other);
                }
                Some(existing) if existing != expected => {
                    return Err(Error::InconsistentRates {
                        channel: format!(
                            "{} -> {}",
                            graph.node(e.src).name,
                            graph.node(e.dst).name
                        ),
                    });
                }
                Some(_) => {}
            }
        }
    }
    if rates.iter().any(Option::is_none) {
        return Err(Error::InvalidGraph("stream graph is disconnected".into()));
    }
    let rates: Vec<Rational> = rates.into_iter().map(|r| r.expect("checked")).collect();

    // Scale to the smallest positive integer vector.
    let denom_lcm = lcm_all(rates.iter().map(|r| r.denom().unsigned_abs()));
    let scaled: Vec<u128> = rates
        .iter()
        .map(|r| {
            let v = *r * Rational::from_integer(denom_lcm as i128);
            let v = v.to_integer().expect("lcm clears denominators");
            assert!(v > 0, "repetition rates are positive by construction");
            v as u128
        })
        .collect();
    let g = scaled.iter().copied().fold(0u128, gcd);
    Ok(scaled
        .iter()
        .map(|&v| u32::try_from(v / g).expect("repetition count fits in u32"))
        .collect())
}

/// Least fixpoint of the init inequalities, by round-robin relaxation.
/// Divergence (init counts exceeding a generous bound) indicates an
/// under-primed feedback loop and is reported as deadlock.
fn init_vector(graph: &FlatGraph, reps: &[u32]) -> Result<Vec<u32>> {
    let n = graph.len();
    let mut init = vec![0u64; n];
    // A loose certificate bound: no sound init schedule needs more firings
    // of a node than `reps * (edges + 1)` — beyond that the relaxation is
    // chasing an unsatisfiable cycle.
    let bound: Vec<u64> = reps
        .iter()
        .map(|&r| u64::from(r) * (graph.edges().len() as u64 + 2))
        .collect();
    loop {
        let mut changed = false;
        for (i, e) in graph.edges().iter().enumerate() {
            let eid = EdgeId(i as u32);
            let push = u64::from(graph.push_rate(eid));
            let pop = u64::from(graph.pop_rate(eid));
            let peek = u64::from(graph.peek_rate(eid));
            let slack_needed = peek - pop;
            let have = e.initial.len() as u64;
            // m + init_u*push >= init_v*pop + slack
            let rhs = init[e.dst.0 as usize] * pop + slack_needed;
            let needed = rhs.saturating_sub(have).div_ceil(push);
            let u = e.src.0 as usize;
            if init[u] < needed {
                if needed > bound[u] {
                    return Err(Error::Deadlock {
                        stalled: vec![format!(
                            "{} (initialization diverges)",
                            graph.node(e.src).name
                        )],
                    });
                }
                init[u] = needed;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Ok(init
        .into_iter()
        .map(|v| u32::try_from(v).expect("init count fits in u32"))
        .collect())
}

/// Greedy simulation that fires each node `target` times starting from
/// `tokens`, returning a valid order and leaving `tokens` at the final
/// state. Diagnoses deadlock when stuck.
fn greedy_order(graph: &FlatGraph, target: &[u32], tokens: &mut [u64]) -> Result<Vec<NodeId>> {
    let mut remaining: Vec<u32> = target.to_vec();
    let total: u64 = target.iter().map(|&r| u64::from(r)).sum();
    let mut order = Vec::with_capacity(total as usize);

    let in_edges: Vec<Vec<EdgeId>> = (0..graph.len())
        .map(|i| graph.in_edges(NodeId(i as u32)))
        .collect();
    let out_edges: Vec<Vec<EdgeId>> = (0..graph.len())
        .map(|i| graph.out_edges(NodeId(i as u32)))
        .collect();

    let fireable = |node: usize, tokens: &[u64]| {
        in_edges[node]
            .iter()
            .all(|&e| tokens[e.0 as usize] >= u64::from(graph.peek_rate(e)))
    };

    let mut progress = true;
    while progress {
        progress = false;
        for node in 0..graph.len() {
            while remaining[node] > 0 && fireable(node, tokens) {
                remaining[node] -= 1;
                for &e in &in_edges[node] {
                    tokens[e.0 as usize] -= u64::from(graph.pop_rate(e));
                }
                for &e in &out_edges[node] {
                    tokens[e.0 as usize] += u64::from(graph.push_rate(e));
                }
                order.push(NodeId(node as u32));
                progress = true;
            }
        }
    }
    if remaining.iter().any(|&r| r > 0) {
        let stalled = remaining
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r > 0)
            .map(|(i, &r)| format!("{}:{r}", graph.node(NodeId(i as u32)).name))
            .collect();
        return Err(Error::Deadlock { stalled });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{FeedbackLoopSpec, FilterSpec, SplitterKind, StreamSpec};
    use crate::ir::{identity, ElemTy, Expr, FnBuilder, Scalar};

    /// pop `p`, push `q` filter.
    fn rate_filter(name: &str, p: u32, q: u32) -> StreamSpec {
        let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
        let x = f.local(ElemTy::I32);
        for _ in 0..p {
            f.pop_into(0, x);
        }
        for _ in 0..q {
            f.push(0, Expr::local(x));
        }
        StreamSpec::filter(FilterSpec::new(name, f.build().unwrap()))
    }

    #[test]
    fn paper_figure_4_rates() {
        // Filter A pushes 2, filter B pops 3 => k = [3, 2].
        let g = StreamSpec::pipeline(vec![rate_filter("A", 1, 2), rate_filter("B", 3, 1)])
            .flatten()
            .unwrap();
        let s = solve(&g).unwrap();
        assert_eq!(s.repetitions(), &[3, 2]);
        assert_eq!(s.input_tokens_per_iteration(&g), 3);
        assert_eq!(s.output_tokens_per_iteration(&g), 2);
        assert_eq!(s.edge_tokens_per_iteration(&g, EdgeId(0)), 6);
        assert_eq!(s.init_repetitions(), &[0, 0]);
    }

    #[test]
    fn identity_pipeline_all_ones() {
        let id = |n: &str| StreamSpec::filter(FilterSpec::new(n, identity(ElemTy::I32)));
        let g = StreamSpec::pipeline(vec![id("a"), id("b"), id("c")])
            .flatten()
            .unwrap();
        let s = solve(&g).unwrap();
        assert_eq!(s.repetitions(), &[1, 1, 1]);
        assert_eq!(s.firing_order().len(), 3);
        assert!(s.init_order().is_empty());
    }

    #[test]
    fn split_join_rates_balance() {
        // RR(1,1) split into a 1->2 expander and an identity, joined (2,1).
        let g = StreamSpec::split_join(
            SplitterKind::RoundRobin(vec![1, 1]),
            vec![rate_filter("up", 1, 2), rate_filter("id", 1, 1)],
            vec![2, 1],
        )
        .flatten()
        .unwrap();
        let s = solve(&g).unwrap();
        for (i, node) in g.nodes().iter().enumerate() {
            assert_eq!(s.repetitions()[i], 1, "node {}", node.name);
        }
    }

    #[test]
    fn primitive_vector_has_gcd_one() {
        let g = StreamSpec::pipeline(vec![rate_filter("a", 2, 4), rate_filter("b", 2, 2)])
            .flatten()
            .unwrap();
        let s = solve(&g).unwrap();
        // Balance: k_a * 4 == k_b * 2 -> k = [1, 2].
        assert_eq!(s.repetitions(), &[1, 2]);
    }

    #[test]
    fn inconsistent_rates_detected() {
        // Duplicate splitter to two branches with different expansion, equal
        // joiner weights -> inconsistent.
        let g = StreamSpec::split_join(
            SplitterKind::Duplicate,
            vec![rate_filter("x1", 1, 1), rate_filter("x2", 1, 2)],
            vec![1, 1],
        )
        .flatten()
        .unwrap();
        let e = solve(&g).unwrap_err();
        assert!(matches!(e, Error::InconsistentRates { .. }));
    }

    #[test]
    fn feedback_loop_with_enough_tokens_schedules() {
        let fl = StreamSpec::feedback_loop(FeedbackLoopSpec {
            joiner: [1, 1],
            body: Box::new(rate_filter("body", 1, 1)),
            splitter: SplitterKind::RoundRobin(vec![1, 1]),
            feedback: None,
            initial: vec![Scalar::I32(0)],
        });
        let g = fl.flatten().unwrap();
        let s = solve(&g).unwrap();
        assert!(s.firing_order().len() as u64 >= 3);
    }

    #[test]
    fn feedback_loop_without_tokens_deadlocks() {
        let fl = StreamSpec::feedback_loop(FeedbackLoopSpec {
            joiner: [1, 1],
            body: Box::new(rate_filter("body", 1, 1)),
            splitter: SplitterKind::RoundRobin(vec![1, 1]),
            feedback: None,
            initial: vec![],
        });
        let g = fl.flatten().unwrap();
        let e = solve(&g).unwrap_err();
        assert!(matches!(e, Error::Deadlock { .. }));
    }

    #[test]
    fn peeking_gets_an_init_schedule() {
        // A peeking consumer (peek 3, pop 1) after a 1->1 producer: the init
        // phase fires the producer twice to deposit the 2-token slack.
        let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
        f.push(0, Expr::peek(0, Expr::i32(2)));
        f.pop(0);
        let peeker = StreamSpec::filter(FilterSpec::new("peek3", f.build().unwrap()));
        let g = StreamSpec::pipeline(vec![rate_filter("src", 1, 1), peeker])
            .flatten()
            .unwrap();
        let s = solve(&g).unwrap();
        assert_eq!(s.repetitions(), &[1, 1]);
        assert_eq!(s.init_repetitions(), &[2, 0]);
        assert_eq!(s.init_order().len(), 2);
        assert_eq!(s.edge_resident_tokens(&g, EdgeId(0)), 2);
        assert_eq!(s.input_tokens_for_init(&g), 2);
    }

    #[test]
    fn init_slack_propagates_upstream() {
        // Two peeking stages in a row: the first stage's init firings force
        // extra firings of the source too.
        let peeker = |name: &str| {
            let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
            f.push(0, Expr::peek(0, Expr::i32(1)));
            f.pop(0);
            StreamSpec::filter(FilterSpec::new(name, f.build().unwrap()))
        };
        let g = StreamSpec::pipeline(vec![rate_filter("src", 1, 1), peeker("p1"), peeker("p2")])
            .flatten()
            .unwrap();
        let s = solve(&g).unwrap();
        assert_eq!(s.init_repetitions(), &[2, 1, 0]);
    }

    #[test]
    fn firing_order_is_a_valid_schedule() {
        let g = StreamSpec::pipeline(vec![rate_filter("A", 1, 2), rate_filter("B", 3, 1)])
            .flatten()
            .unwrap();
        let s = solve(&g).unwrap();
        // Replay the order and check the firing rule at every step.
        let mut tokens = vec![0u64; g.edges().len()];
        for &node in s.firing_order() {
            for e in g.in_edges(node) {
                assert!(tokens[e.0 as usize] >= u64::from(g.peek_rate(e)));
                tokens[e.0 as usize] -= u64::from(g.pop_rate(e));
            }
            for e in g.out_edges(node) {
                tokens[e.0 as usize] += u64::from(g.push_rate(e));
            }
        }
    }
}
