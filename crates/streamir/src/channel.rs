//! Runtime FIFO channels used by the CPU executor.

use std::collections::VecDeque;

use crate::ir::{ElemTy, Scalar};

/// An unbounded FIFO of tokens of a single element type.
///
/// This is the reference channel implementation: the CPU executor connects
/// filters with `Fifo`s, and its observable behaviour (order, peek
/// semantics) defines what the GPU buffer layouts must reproduce.
///
/// # Examples
///
/// ```
/// use streamir::channel::Fifo;
/// use streamir::ir::{ElemTy, Scalar};
///
/// let mut f = Fifo::new(ElemTy::I32);
/// f.push(Scalar::I32(1));
/// f.push(Scalar::I32(2));
/// assert_eq!(f.peek(1), Some(Scalar::I32(2)));
/// assert_eq!(f.pop(), Some(Scalar::I32(1)));
/// assert_eq!(f.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Fifo {
    elem: ElemTy,
    buf: VecDeque<Scalar>,
    /// High-water mark of `len()`, for buffer-requirement reporting.
    peak: usize,
}

impl Fifo {
    /// Creates an empty FIFO carrying tokens of type `elem`.
    #[must_use]
    pub fn new(elem: ElemTy) -> Fifo {
        Fifo {
            elem,
            buf: VecDeque::new(),
            peak: 0,
        }
    }

    /// Element type of the channel.
    #[must_use]
    pub fn elem(&self) -> ElemTy {
        self.elem
    }

    /// Number of tokens currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no tokens are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The largest queue length ever observed.
    #[must_use]
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Appends a token.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the token's type differs from the channel
    /// element type; validated graphs never trigger this.
    pub fn push(&mut self, value: Scalar) {
        debug_assert_eq!(value.ty(), self.elem, "token type mismatch on channel");
        self.buf.push_back(value);
        self.peak = self.peak.max(self.buf.len());
    }

    /// Removes and returns the head token, or `None` when empty.
    pub fn pop(&mut self) -> Option<Scalar> {
        self.buf.pop_front()
    }

    /// Reads the token `depth` positions behind the head without consuming.
    #[must_use]
    pub fn peek(&self, depth: u32) -> Option<Scalar> {
        self.buf.get(depth as usize).copied()
    }

    /// Appends every token from `iter`.
    pub fn extend<I: IntoIterator<Item = Scalar>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }

    /// Drains all queued tokens, front first.
    pub fn drain_all(&mut self) -> Vec<Scalar> {
        self.buf.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut f = Fifo::new(ElemTy::I32);
        f.extend((0..5).map(Scalar::I32));
        for i in 0..5 {
            assert_eq!(f.pop(), Some(Scalar::I32(i)));
        }
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn peek_is_nondestructive() {
        let mut f = Fifo::new(ElemTy::F32);
        f.push(Scalar::F32(1.5));
        assert_eq!(f.peek(0), Some(Scalar::F32(1.5)));
        assert_eq!(f.peek(1), None);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut f = Fifo::new(ElemTy::I32);
        f.extend((0..8).map(Scalar::I32));
        for _ in 0..8 {
            f.pop();
        }
        f.push(Scalar::I32(0));
        assert_eq!(f.peak(), 8);
    }

    #[test]
    fn drain_all_empties() {
        let mut f = Fifo::new(ElemTy::I32);
        f.extend((0..3).map(Scalar::I32));
        let drained = f.drain_all();
        assert_eq!(drained.len(), 3);
        assert!(f.is_empty());
    }
}
