//! Lowering hierarchical [`StreamSpec`]s to [`FlatGraph`]s.

use std::collections::HashMap;

use crate::ir::{ElemTy, FnBuilder, WorkFunction};
use crate::{Error, Result};

use super::{Edge, FlatGraph, Node, NodeId, Role, SplitterKind, StreamSpec};

type Port = (NodeId, u8);

struct Flattener {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    name_counts: HashMap<String, u32>,
}

fn bad(msg: impl Into<String>) -> Error {
    Error::InvalidGraph(msg.into())
}

/// Flattens `spec`; see [`StreamSpec::flatten`] for the error contract.
pub fn flatten(spec: &StreamSpec) -> Result<FlatGraph> {
    let mut f = Flattener {
        nodes: Vec::new(),
        edges: Vec::new(),
        name_counts: HashMap::new(),
    };
    let (entry, exit) = f.spec(spec)?;
    let graph = FlatGraph {
        nodes: f.nodes,
        edges: f.edges,
        input: entry.map(|(n, _)| n),
        output: exit.map(|(n, _)| n),
    };
    check_wiring(&graph)?;
    Ok(graph)
}

impl Flattener {
    fn add_node(&mut self, name: &str, work: WorkFunction, role: Role) -> NodeId {
        let count = self.name_counts.entry(name.to_owned()).or_insert(0);
        let unique = if *count == 0 {
            name.to_owned()
        } else {
            format!("{name}#{count}")
        };
        *count += 1;
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name: unique,
            work,
            role,
        });
        id
    }

    fn connect(&mut self, src: Port, dst: Port) -> Result<()> {
        let sty = self.nodes[src.0 .0 as usize].work.output_ports()[src.1 as usize];
        let dty = self.nodes[dst.0 .0 as usize].work.input_ports()[dst.1 as usize];
        if sty != dty {
            return Err(bad(format!(
                "channel element type mismatch: {} produces {sty}, {} consumes {dty}",
                self.nodes[src.0 .0 as usize].name, self.nodes[dst.0 .0 as usize].name
            )));
        }
        self.edges.push(Edge {
            src: src.0,
            src_port: src.1,
            dst: dst.0,
            dst_port: dst.1,
            elem: sty,
            initial: Vec::new(),
        });
        Ok(())
    }

    /// Flattens one sub-spec, returning its external (entry, exit) ports.
    fn spec(&mut self, spec: &StreamSpec) -> Result<(Option<Port>, Option<Port>)> {
        match spec {
            StreamSpec::Filter(fs) => {
                let work = fs.work().clone();
                let n_in = work.input_ports().len();
                let n_out = work.output_ports().len();
                if n_in > 1 || n_out > 1 {
                    return Err(bad(format!(
                        "filter {} has {n_in} inputs / {n_out} outputs; user filters are \
                         at most single-input single-output (use split-join for fan-out)",
                        fs.name()
                    )));
                }
                let id = self.add_node(fs.name(), work, Role::Filter);
                Ok((
                    (n_in == 1).then_some((id, 0)),
                    (n_out == 1).then_some((id, 0)),
                ))
            }
            StreamSpec::Pipeline(stages) => {
                if stages.is_empty() {
                    return Err(bad("empty pipeline"));
                }
                let mut first_entry = None;
                let mut prev_exit: Option<Port> = None;
                for (i, stage) in stages.iter().enumerate() {
                    let (entry, exit) = self.spec(stage)?;
                    if i == 0 {
                        first_entry = entry;
                    } else {
                        match (prev_exit, entry) {
                            (Some(src), Some(dst)) => self.connect(src, dst)?,
                            (None, Some(_)) => {
                                return Err(bad(format!(
                                    "pipeline stage {i} consumes input but the previous \
                                     stage produces none"
                                )))
                            }
                            (Some(_), None) => {
                                return Err(bad(format!(
                                    "pipeline stage {i} takes no input but the previous \
                                     stage produces output"
                                )))
                            }
                            (None, None) => {
                                return Err(bad(format!(
                                    "pipeline stage {i} is disconnected from the previous stage"
                                )))
                            }
                        }
                    }
                    prev_exit = exit;
                }
                Ok((first_entry, prev_exit))
            }
            StreamSpec::SplitJoin {
                splitter,
                branches,
                joiner,
            } => {
                if branches.is_empty() {
                    return Err(bad("split-join with no branches"));
                }
                if joiner.len() != branches.len() {
                    return Err(bad(format!(
                        "joiner has {} weights for {} branches",
                        joiner.len(),
                        branches.len()
                    )));
                }
                if let Some(a) = splitter.arity() {
                    if a != branches.len() {
                        return Err(bad(format!(
                            "splitter has {a} weights for {} branches",
                            branches.len()
                        )));
                    }
                }
                let mut branch_ports = Vec::with_capacity(branches.len());
                for (i, b) in branches.iter().enumerate() {
                    let (entry, exit) = self.spec(b)?;
                    let entry = entry
                        .ok_or_else(|| bad(format!("split-join branch {i} consumes no input")))?;
                    let exit = exit
                        .ok_or_else(|| bad(format!("split-join branch {i} produces no output")))?;
                    branch_ports.push((entry, exit));
                }
                let in_ty = self.nodes[branch_ports[0].0 .0 .0 as usize]
                    .work
                    .input_ports()[branch_ports[0].0 .1 as usize];
                let out_ty = self.nodes[branch_ports[0].1 .0 .0 as usize]
                    .work
                    .output_ports()[branch_ports[0].1 .1 as usize];
                let split_work = splitter_work(splitter, branches.len(), in_ty)?;
                let split_id = self.add_node("split", split_work, Role::Splitter);
                let join_work = joiner_work(joiner, out_ty)?;
                let join_id = self.add_node("join", join_work, Role::Joiner);
                for (i, (entry, exit)) in branch_ports.iter().enumerate() {
                    self.connect((split_id, i as u8), *entry)?;
                    self.connect(*exit, (join_id, i as u8))?;
                }
                Ok((Some((split_id, 0)), Some((join_id, 0))))
            }
            StreamSpec::FeedbackLoop(fl) => {
                let (body_entry, body_exit) = self.spec(&fl.body)?;
                let body_entry =
                    body_entry.ok_or_else(|| bad("feedback-loop body consumes no input"))?;
                let body_exit =
                    body_exit.ok_or_else(|| bad("feedback-loop body produces no output"))?;
                let in_ty =
                    self.nodes[body_entry.0 .0 as usize].work.input_ports()[body_entry.1 as usize];
                let out_ty =
                    self.nodes[body_exit.0 .0 as usize].work.output_ports()[body_exit.1 as usize];
                if in_ty != out_ty {
                    return Err(bad(format!(
                        "feedback-loop body input type {in_ty} differs from output type {out_ty}"
                    )));
                }
                for v in &fl.initial {
                    if v.ty() != in_ty {
                        return Err(bad("feedback-loop initial token type mismatch"));
                    }
                }
                let join_work = joiner_work(&fl.joiner, in_ty)?;
                let join_id = self.add_node("fbjoin", join_work, Role::Joiner);
                let split_work = splitter_work(&fl.splitter, 2, out_ty)?;
                let split_id = self.add_node("fbsplit", split_work, Role::Splitter);
                self.connect((join_id, 0), body_entry)?;
                self.connect(body_exit, (split_id, 0))?;
                // Feedback path: splitter port 1 -> [feedback stream] ->
                // joiner port 1, with the initial tokens queued on the edge
                // that enters the joiner.
                let fb_src: Port = match &fl.feedback {
                    None => (split_id, 1),
                    Some(fb) => {
                        let (fb_entry, fb_exit) = self.spec(fb)?;
                        let fb_entry =
                            fb_entry.ok_or_else(|| bad("feedback stream consumes no input"))?;
                        let fb_exit =
                            fb_exit.ok_or_else(|| bad("feedback stream produces no output"))?;
                        self.connect((split_id, 1), fb_entry)?;
                        fb_exit
                    }
                };
                self.connect(fb_src, (join_id, 1))?;
                let fb_edge = self.edges.len() - 1;
                self.edges[fb_edge].initial = fl.initial.clone();
                Ok((Some((join_id, 0)), Some((split_id, 0))))
            }
        }
    }
}

/// Generates the work function of a splitter node.
fn splitter_work(kind: &SplitterKind, n_branches: usize, ty: ElemTy) -> Result<WorkFunction> {
    let outs = vec![ty; n_branches];
    let mut f = FnBuilder::new(&[ty], &outs);
    let x = f.local(ty);
    match kind {
        SplitterKind::Duplicate => {
            f.pop_into(0, x);
            for port in 0..n_branches {
                f.push(port as u8, crate::ir::Expr::local(x));
            }
        }
        SplitterKind::RoundRobin(weights) => {
            for (port, &w) in weights.iter().enumerate() {
                if w == 0 {
                    return Err(bad("round-robin splitter weight of zero"));
                }
                for _ in 0..w {
                    f.pop_into(0, x);
                    f.push(port as u8, crate::ir::Expr::local(x));
                }
            }
        }
    }
    f.build()
}

/// Generates the work function of a round-robin joiner node.
fn joiner_work(weights: &[u32], ty: ElemTy) -> Result<WorkFunction> {
    let ins = vec![ty; weights.len()];
    let mut f = FnBuilder::new(&ins, &[ty]);
    let x = f.local(ty);
    for (port, &w) in weights.iter().enumerate() {
        if w == 0 {
            return Err(bad("round-robin joiner weight of zero"));
        }
        for _ in 0..w {
            f.pop_into(port as u8, x);
            f.push(0, crate::ir::Expr::local(x));
        }
    }
    f.build()
}

/// Verifies that every internal port is wired exactly once and external
/// ports match the recorded graph input/output.
fn check_wiring(g: &FlatGraph) -> Result<()> {
    for (i, node) in g.nodes.iter().enumerate() {
        let id = NodeId(i as u32);
        for port in 0..node.work.input_ports().len() as u8 {
            let count = g
                .edges
                .iter()
                .filter(|e| e.dst == id && e.dst_port == port)
                .count();
            let is_graph_input = g.input == Some(id) && port == 0;
            if is_graph_input {
                if count != 0 {
                    return Err(bad(format!(
                        "graph input port of {} is also fed by a channel",
                        node.name
                    )));
                }
            } else if count != 1 {
                return Err(bad(format!(
                    "input port {port} of {} has {count} producers (expected 1)",
                    node.name
                )));
            }
        }
        for port in 0..node.work.output_ports().len() as u8 {
            let count = g
                .edges
                .iter()
                .filter(|e| e.src == id && e.src_port == port)
                .count();
            let is_graph_output = g.output == Some(id) && port == 0;
            if is_graph_output {
                if count != 0 {
                    return Err(bad(format!(
                        "graph output port of {} also feeds a channel",
                        node.name
                    )));
                }
            } else if count != 1 {
                return Err(bad(format!(
                    "output port {port} of {} has {count} consumers (expected 1)",
                    node.name
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FilterSpec;
    use crate::ir::{identity, Expr, Scalar};

    fn id_filter(name: &str) -> StreamSpec {
        StreamSpec::filter(FilterSpec::new(name, identity(ElemTy::I32)))
    }

    /// pop 1, push `n` copies.
    fn expander(name: &str, n: u32) -> StreamSpec {
        let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
        let x = f.local(ElemTy::I32);
        f.pop_into(0, x);
        for _ in 0..n {
            f.push(0, Expr::local(x));
        }
        StreamSpec::filter(FilterSpec::new(name, f.build().unwrap()))
    }

    #[test]
    fn single_filter_graph() {
        let g = id_filter("only").flatten().unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.input(), Some(NodeId(0)));
        assert_eq!(g.output(), Some(NodeId(0)));
        assert!(g.edges().is_empty());
    }

    #[test]
    fn pipeline_wires_stages_in_order() {
        let g = StreamSpec::pipeline(vec![id_filter("a"), id_filter("b"), id_filter("c")])
            .flatten()
            .unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.edges().len(), 2);
        assert_eq!(g.edges()[0].src, NodeId(0));
        assert_eq!(g.edges()[0].dst, NodeId(1));
        assert_eq!(g.input(), Some(NodeId(0)));
        assert_eq!(g.output(), Some(NodeId(2)));
    }

    #[test]
    fn split_join_generates_splitter_and_joiner() {
        let g = StreamSpec::split_join(
            SplitterKind::RoundRobin(vec![2, 3]),
            vec![id_filter("a"), id_filter("b")],
            vec![2, 3],
        )
        .flatten()
        .unwrap();
        assert_eq!(g.len(), 4);
        let split = g
            .nodes()
            .iter()
            .position(|n| n.role == Role::Splitter)
            .unwrap();
        let split_node = &g.nodes()[split];
        assert_eq!(split_node.work.pop_rate(0), 5);
        assert_eq!(split_node.work.push_rate(0), 2);
        assert_eq!(split_node.work.push_rate(1), 3);
        let join = g
            .nodes()
            .iter()
            .position(|n| n.role == Role::Joiner)
            .unwrap();
        let join_node = &g.nodes()[join];
        assert_eq!(join_node.work.pop_rate(0), 2);
        assert_eq!(join_node.work.pop_rate(1), 3);
        assert_eq!(join_node.work.push_rate(0), 5);
    }

    #[test]
    fn duplicate_splitter_copies() {
        let g = StreamSpec::split_join(
            SplitterKind::Duplicate,
            vec![id_filter("a"), id_filter("b"), id_filter("c")],
            vec![1, 1, 1],
        )
        .flatten()
        .unwrap();
        let split = g.nodes().iter().find(|n| n.role == Role::Splitter).unwrap();
        assert_eq!(split.work.pop_rate(0), 1);
        for p in 0..3 {
            assert_eq!(split.work.push_rate(p), 1);
        }
    }

    #[test]
    fn weight_mismatches_rejected() {
        let e = StreamSpec::split_join(
            SplitterKind::RoundRobin(vec![1]),
            vec![id_filter("a"), id_filter("b")],
            vec![1, 1],
        )
        .flatten()
        .unwrap_err();
        assert!(matches!(e, Error::InvalidGraph(_)));

        let e = StreamSpec::split_join(SplitterKind::Duplicate, vec![id_filter("a")], vec![1, 1])
            .flatten()
            .unwrap_err();
        assert!(matches!(e, Error::InvalidGraph(_)));
    }

    #[test]
    fn zero_weight_rejected() {
        let e = StreamSpec::split_join(
            SplitterKind::RoundRobin(vec![1, 0]),
            vec![id_filter("a"), id_filter("b")],
            vec![1, 1],
        )
        .flatten()
        .unwrap_err();
        assert!(matches!(e, Error::InvalidGraph(ref m) if m.contains("zero")));
    }

    #[test]
    fn empty_pipeline_rejected() {
        assert!(matches!(
            StreamSpec::pipeline(vec![]).flatten().unwrap_err(),
            Error::InvalidGraph(_)
        ));
    }

    #[test]
    fn type_mismatch_rejected() {
        let f32_id = StreamSpec::filter(FilterSpec::new("f", identity(ElemTy::F32)));
        let e = StreamSpec::pipeline(vec![id_filter("i"), f32_id])
            .flatten()
            .unwrap_err();
        assert!(matches!(e, Error::InvalidGraph(ref m) if m.contains("type mismatch")));
    }

    #[test]
    fn feedback_loop_flattens_with_initial_tokens() {
        let fl = StreamSpec::feedback_loop(crate::graph::FeedbackLoopSpec {
            joiner: [1, 1],
            body: Box::new(expander("body", 2)),
            splitter: SplitterKind::RoundRobin(vec![1, 1]),
            feedback: None,
            initial: vec![Scalar::I32(0)],
        });
        let g = fl.flatten().unwrap();
        assert_eq!(g.len(), 3); // joiner, body, splitter
        let fb_edge = g
            .edges()
            .iter()
            .find(|e| !e.initial.is_empty())
            .expect("feedback edge carries initial tokens");
        assert_eq!(fb_edge.initial, vec![Scalar::I32(0)]);
        // Topological order succeeds because the feedback edge breaks the cycle.
        assert_eq!(g.topo_order().unwrap().len(), 3);
    }

    #[test]
    fn duplicate_names_are_disambiguated() {
        let g = StreamSpec::pipeline(vec![id_filter("f"), id_filter("f"), id_filter("f")])
            .flatten()
            .unwrap();
        let names: Vec<_> = g.nodes().iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, ["f", "f#1", "f#2"]);
    }

    #[test]
    fn filter_count_counts_leaves() {
        let spec = StreamSpec::pipeline(vec![
            id_filter("a"),
            StreamSpec::split_join(
                SplitterKind::Duplicate,
                vec![id_filter("b"), id_filter("c")],
                vec![1, 1],
            ),
        ]);
        assert_eq!(spec.filter_count(), 3);
    }
}
