//! Graphviz export of flattened stream graphs.

use std::fmt::Write as _;

use super::{FlatGraph, NodeId, Role};

impl FlatGraph {
    /// Renders the graph in Graphviz DOT format: filters as boxes,
    /// splitters/joiners as trapezia, channels annotated with
    /// `push → pop` rates (and initial-token counts on feedback edges).
    ///
    /// # Examples
    ///
    /// ```
    /// use streamir::graph::{FilterSpec, StreamSpec};
    /// use streamir::ir::{identity, ElemTy};
    ///
    /// let g = StreamSpec::pipeline(vec![
    ///     StreamSpec::filter(FilterSpec::new("a", identity(ElemTy::I32))),
    ///     StreamSpec::filter(FilterSpec::new("b", identity(ElemTy::I32))),
    /// ])
    /// .flatten()?;
    /// let dot = g.to_dot("pipeline");
    /// assert!(dot.contains("digraph pipeline"));
    /// assert!(dot.contains("\"a\" -> \"b\""));
    /// # Ok::<(), streamir::Error>(())
    /// ```
    #[must_use]
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node [fontname=\"monospace\"];");
        for (i, node) in self.nodes().iter().enumerate() {
            let id = NodeId(i as u32);
            let shape = match node.role {
                Role::Filter => "box",
                Role::Splitter => "invtrapezium",
                Role::Joiner => "trapezium",
            };
            let mut extras = String::new();
            if node.work.is_peeking() {
                extras.push_str("\\npeek");
            }
            if node.work.is_stateful() {
                extras.push_str("\\nstateful");
            }
            let io = match (self.input() == Some(id), self.output() == Some(id)) {
                (true, true) => ", style=filled, fillcolor=lightyellow",
                (true, false) => ", style=filled, fillcolor=lightblue",
                (false, true) => ", style=filled, fillcolor=lightgreen",
                (false, false) => "",
            };
            let _ = writeln!(
                out,
                "  \"{}\" [shape={shape}, label=\"{}{extras}\"{io}];",
                node.name, node.name
            );
        }
        for (i, edge) in self.edges().iter().enumerate() {
            let eid = super::EdgeId(i as u32);
            let mut label = format!("{}:{}", self.push_rate(eid), self.pop_rate(eid));
            if !edge.initial.is_empty() {
                let _ = write!(label, " [+{}]", edge.initial.len());
            }
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{label}\"];",
                self.node(edge.src).name,
                self.node(edge.dst).name
            );
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::graph::{FeedbackLoopSpec, FilterSpec, SplitterKind, StreamSpec};
    use crate::ir::{identity, ElemTy, Scalar};

    #[test]
    fn dot_contains_every_node_and_edge() {
        let id = |n: &str| StreamSpec::filter(FilterSpec::new(n, identity(ElemTy::I32)));
        let g = StreamSpec::pipeline(vec![
            id("src"),
            StreamSpec::split_join(
                SplitterKind::Duplicate,
                vec![id("top"), id("bot")],
                vec![1, 1],
            ),
            id("sink"),
        ])
        .flatten()
        .unwrap();
        let dot = g.to_dot("g");
        for name in ["src", "top", "bot", "sink", "split", "join"] {
            assert!(dot.contains(&format!("\"{name}\"")), "missing {name}");
        }
        assert!(dot.contains("invtrapezium"), "splitter shape");
        assert_eq!(dot.matches(" -> ").count(), g.edges().len());
    }

    #[test]
    fn feedback_edges_show_initial_tokens() {
        let body = {
            let mut f = crate::ir::FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
            let x = f.local(ElemTy::I32);
            f.pop_into(0, x);
            f.push(0, crate::ir::Expr::local(x));
            f.push(0, crate::ir::Expr::local(x));
            StreamSpec::filter(FilterSpec::new("body", f.build().unwrap()))
        };
        let g = StreamSpec::feedback_loop(FeedbackLoopSpec {
            joiner: [1, 1],
            body: Box::new(body),
            splitter: SplitterKind::RoundRobin(vec![1, 1]),
            feedback: None,
            initial: vec![Scalar::I32(0), Scalar::I32(0)],
        })
        .flatten()
        .unwrap();
        let dot = g.to_dot("loop");
        assert!(dot.contains("[+2]"), "initial tokens annotated: {dot}");
    }
}
