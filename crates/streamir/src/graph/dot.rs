//! Graphviz export of flattened stream graphs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use super::{FlatGraph, NodeId, Role};

/// Visual annotations for [`FlatGraph::to_dot_annotated`]: per-node and
/// per-edge colors and extra label lines, keyed by node/edge id. Built by
/// analysis layers (e.g. a verifier flagging hazardous channels) without
/// this crate knowing their diagnostic types.
#[derive(Debug, Clone, Default)]
pub struct DotAnnotations {
    /// Fill color per flagged node (`style=filled`), e.g. `"salmon"`.
    pub node_fills: BTreeMap<u32, String>,
    /// Extra label lines per node, rendered below the name.
    pub node_notes: BTreeMap<u32, Vec<String>>,
    /// Stroke/font color per flagged edge, e.g. `"red"`.
    pub edge_colors: BTreeMap<u32, String>,
    /// Extra label lines per edge, rendered below the rate annotation.
    pub edge_notes: BTreeMap<u32, Vec<String>>,
}

impl DotAnnotations {
    /// `true` when nothing is flagged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.node_fills.is_empty()
            && self.node_notes.is_empty()
            && self.edge_colors.is_empty()
            && self.edge_notes.is_empty()
    }

    /// Flags a node with a fill color and a note line. A later color for
    /// the same node wins; notes accumulate.
    pub fn flag_node(&mut self, node: u32, color: &str, note: impl Into<String>) {
        self.node_fills.insert(node, color.to_string());
        self.node_notes.entry(node).or_default().push(note.into());
    }

    /// Flags an edge with a color and a note line. A later color for the
    /// same edge wins; notes accumulate.
    pub fn flag_edge(&mut self, edge: u32, color: &str, note: impl Into<String>) {
        self.edge_colors.insert(edge, color.to_string());
        self.edge_notes.entry(edge).or_default().push(note.into());
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl FlatGraph {
    /// Renders the graph in Graphviz DOT format: filters as boxes,
    /// splitters/joiners as trapezia, channels annotated with
    /// `push → pop` rates (and initial-token counts on feedback edges).
    ///
    /// # Examples
    ///
    /// ```
    /// use streamir::graph::{FilterSpec, StreamSpec};
    /// use streamir::ir::{identity, ElemTy};
    ///
    /// let g = StreamSpec::pipeline(vec![
    ///     StreamSpec::filter(FilterSpec::new("a", identity(ElemTy::I32))),
    ///     StreamSpec::filter(FilterSpec::new("b", identity(ElemTy::I32))),
    /// ])
    /// .flatten()?;
    /// let dot = g.to_dot("pipeline");
    /// assert!(dot.contains("digraph pipeline"));
    /// assert!(dot.contains("\"a\" -> \"b\""));
    /// # Ok::<(), streamir::Error>(())
    /// ```
    #[must_use]
    pub fn to_dot(&self, name: &str) -> String {
        self.to_dot_annotated(name, &DotAnnotations::default())
    }

    /// [`FlatGraph::to_dot`] with analysis annotations: flagged nodes are
    /// filled with their annotation color (overriding the input/output
    /// tint), flagged edges are stroked in theirs, and note lines are
    /// appended to the labels.
    #[must_use]
    pub fn to_dot_annotated(&self, name: &str, ann: &DotAnnotations) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node [fontname=\"monospace\"];");
        for (i, node) in self.nodes().iter().enumerate() {
            let id = NodeId(i as u32);
            let shape = match node.role {
                Role::Filter => "box",
                Role::Splitter => "invtrapezium",
                Role::Joiner => "trapezium",
            };
            let mut extras = String::new();
            if node.work.is_peeking() {
                extras.push_str("\\npeek");
            }
            if node.work.is_stateful() {
                extras.push_str("\\nstateful");
            }
            if let Some(notes) = ann.node_notes.get(&(i as u32)) {
                for n in notes {
                    extras.push_str("\\n");
                    extras.push_str(&escape(n));
                }
            }
            let io = if let Some(fill) = ann.node_fills.get(&(i as u32)) {
                format!(", style=filled, fillcolor=\"{}\"", escape(fill))
            } else {
                match (self.input() == Some(id), self.output() == Some(id)) {
                    (true, true) => ", style=filled, fillcolor=lightyellow".to_string(),
                    (true, false) => ", style=filled, fillcolor=lightblue".to_string(),
                    (false, true) => ", style=filled, fillcolor=lightgreen".to_string(),
                    (false, false) => String::new(),
                }
            };
            let _ = writeln!(
                out,
                "  \"{}\" [shape={shape}, label=\"{}{extras}\"{io}];",
                node.name, node.name
            );
        }
        for (i, edge) in self.edges().iter().enumerate() {
            let eid = super::EdgeId(i as u32);
            let mut label = format!("{}:{}", self.push_rate(eid), self.pop_rate(eid));
            if !edge.initial.is_empty() {
                let _ = write!(label, " [+{}]", edge.initial.len());
            }
            if let Some(notes) = ann.edge_notes.get(&(i as u32)) {
                for n in notes {
                    label.push_str("\\n");
                    label.push_str(&escape(n));
                }
            }
            let color = ann.edge_colors.get(&(i as u32)).map_or(String::new(), |c| {
                format!(", color=\"{0}\", fontcolor=\"{0}\", penwidth=2", escape(c))
            });
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{label}\"{color}];",
                self.node(edge.src).name,
                self.node(edge.dst).name
            );
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::graph::{FeedbackLoopSpec, FilterSpec, SplitterKind, StreamSpec};
    use crate::ir::{identity, ElemTy, Scalar};

    #[test]
    fn dot_contains_every_node_and_edge() {
        let id = |n: &str| StreamSpec::filter(FilterSpec::new(n, identity(ElemTy::I32)));
        let g = StreamSpec::pipeline(vec![
            id("src"),
            StreamSpec::split_join(
                SplitterKind::Duplicate,
                vec![id("top"), id("bot")],
                vec![1, 1],
            ),
            id("sink"),
        ])
        .flatten()
        .unwrap();
        let dot = g.to_dot("g");
        for name in ["src", "top", "bot", "sink", "split", "join"] {
            assert!(dot.contains(&format!("\"{name}\"")), "missing {name}");
        }
        assert!(dot.contains("invtrapezium"), "splitter shape");
        assert_eq!(dot.matches(" -> ").count(), g.edges().len());
    }

    #[test]
    fn annotations_color_and_note_flagged_elements() {
        use super::DotAnnotations;
        let id = |n: &str| StreamSpec::filter(FilterSpec::new(n, identity(ElemTy::I32)));
        let g = StreamSpec::pipeline(vec![id("a"), id("b")])
            .flatten()
            .unwrap();
        let mut ann = DotAnnotations::default();
        assert!(ann.is_empty());
        ann.flag_node(1, "salmon", "V0201 NonCoalescedAccess");
        ann.flag_edge(0, "red", "error[V0201]: \"scattered\"");
        let dot = g.to_dot_annotated("g", &ann);
        assert!(dot.contains("fillcolor=\"salmon\""), "{dot}");
        assert!(dot.contains("V0201 NonCoalescedAccess"), "{dot}");
        assert!(dot.contains("color=\"red\""), "{dot}");
        assert!(dot.contains("penwidth=2"), "{dot}");
        assert!(dot.contains("\\\"scattered\\\""), "escaped quotes: {dot}");
        // Unannotated rendering is unchanged by the default annotations.
        assert_eq!(
            g.to_dot("g"),
            g.to_dot_annotated("g", &DotAnnotations::default())
        );
    }

    #[test]
    fn feedback_edges_show_initial_tokens() {
        let body = {
            let mut f = crate::ir::FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
            let x = f.local(ElemTy::I32);
            f.pop_into(0, x);
            f.push(0, crate::ir::Expr::local(x));
            f.push(0, crate::ir::Expr::local(x));
            StreamSpec::filter(FilterSpec::new("body", f.build().unwrap()))
        };
        let g = StreamSpec::feedback_loop(FeedbackLoopSpec {
            joiner: [1, 1],
            body: Box::new(body),
            splitter: SplitterKind::RoundRobin(vec![1, 1]),
            feedback: None,
            initial: vec![Scalar::I32(0), Scalar::I32(0)],
        })
        .flatten()
        .unwrap();
        let dot = g.to_dot("loop");
        assert!(dot.contains("[+2]"), "initial tokens annotated: {dot}");
    }
}
