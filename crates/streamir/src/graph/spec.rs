//! Hierarchical stream composition: the StreamIt constructs.

use crate::ir::Scalar;
use crate::Result;

use super::{FilterSpec, FlatGraph};

/// How a splitter distributes its input among branches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SplitterKind {
    /// Copies every input token to *every* branch (pop 1, push 1 on each
    /// output per firing).
    Duplicate,
    /// Deals tokens round-robin: `weights[i]` consecutive tokens go to
    /// branch `i` per firing.
    RoundRobin(Vec<u32>),
}

impl SplitterKind {
    /// A round-robin splitter with equal weight `w` for `n` branches.
    #[must_use]
    pub fn round_robin_uniform(n: usize, w: u32) -> SplitterKind {
        SplitterKind::RoundRobin(vec![w; n])
    }

    /// Number of branches this splitter feeds (`None` for duplicate, which
    /// adapts to the split-join's branch count).
    #[must_use]
    pub fn arity(&self) -> Option<usize> {
        match self {
            SplitterKind::Duplicate => None,
            SplitterKind::RoundRobin(w) => Some(w.len()),
        }
    }
}

/// A feedback loop: a joiner merges external input with a feedback path,
/// the body transforms it, and a splitter sends part of the body's output
/// back around. `initial` tokens pre-populate the feedback channel so the
/// loop can start. Joiners are always round-robin (as in StreamIt).
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackLoopSpec {
    /// Round-robin joiner weights `[external, feedback]`.
    pub joiner: [u32; 2],
    /// The forward path from joiner output to splitter input.
    pub body: Box<StreamSpec>,
    /// Splitter dealing the body output to `[external output, feedback]`.
    pub splitter: SplitterKind,
    /// Optional stream on the feedback path (splitter → joiner).
    pub feedback: Option<Box<StreamSpec>>,
    /// Initial tokens pre-queued on the feedback edge at the joiner.
    pub initial: Vec<Scalar>,
}

/// A hierarchical stream program.
///
/// # Examples
///
/// A pipeline of a split-join between two filters:
///
/// ```
/// use streamir::graph::{FilterSpec, SplitterKind, StreamSpec};
/// use streamir::ir::{identity, ElemTy};
///
/// let id = || StreamSpec::filter(FilterSpec::new("id", identity(ElemTy::I32)));
/// let spec = StreamSpec::pipeline(vec![
///     id(),
///     StreamSpec::split_join(SplitterKind::round_robin_uniform(2, 1), vec![id(), id()], vec![1, 1]),
///     id(),
/// ]);
/// let flat = spec.flatten()?;
/// assert_eq!(flat.nodes().len(), 6); // 4 filters + splitter + joiner
/// # Ok::<(), streamir::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // specs are built once at graph
                                     // construction and never stored in bulk; boxing FilterSpec would only
                                     // complicate the builder API
pub enum StreamSpec {
    /// A single filter.
    Filter(FilterSpec),
    /// Sequential composition; each stage's output feeds the next stage.
    Pipeline(Vec<StreamSpec>),
    /// Parallel composition between a splitter and a (round-robin) joiner.
    SplitJoin {
        /// How input is distributed to the branches.
        splitter: SplitterKind,
        /// The parallel branches, each single-input single-output.
        branches: Vec<StreamSpec>,
        /// Round-robin joiner weights, one per branch.
        joiner: Vec<u32>,
    },
    /// A cycle with initial tokens.
    FeedbackLoop(FeedbackLoopSpec),
}

impl StreamSpec {
    /// Wraps a filter.
    #[must_use]
    pub fn filter(f: FilterSpec) -> StreamSpec {
        StreamSpec::Filter(f)
    }

    /// Builds a pipeline of stages.
    #[must_use]
    pub fn pipeline(stages: Vec<StreamSpec>) -> StreamSpec {
        StreamSpec::Pipeline(stages)
    }

    /// Builds a split-join.
    #[must_use]
    pub fn split_join(
        splitter: SplitterKind,
        branches: Vec<StreamSpec>,
        joiner: Vec<u32>,
    ) -> StreamSpec {
        StreamSpec::SplitJoin {
            splitter,
            branches,
            joiner,
        }
    }

    /// Builds a feedback loop.
    #[must_use]
    pub fn feedback_loop(spec: FeedbackLoopSpec) -> StreamSpec {
        StreamSpec::FeedbackLoop(spec)
    }

    /// Lowers the hierarchy to a flat filter graph with explicit
    /// splitter/joiner nodes.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidGraph`] when the composition is
    /// malformed: empty pipelines or split-joins, arity mismatches between
    /// stages, splitter/joiner weight counts that disagree with the branch
    /// count, channel element-type conflicts, or zero weights.
    pub fn flatten(&self) -> Result<FlatGraph> {
        super::flatten::flatten(self)
    }

    /// Total number of filters (excluding generated splitters/joiners) in
    /// the hierarchy.
    #[must_use]
    pub fn filter_count(&self) -> usize {
        match self {
            StreamSpec::Filter(_) => 1,
            StreamSpec::Pipeline(stages) => stages.iter().map(StreamSpec::filter_count).sum(),
            StreamSpec::SplitJoin { branches, .. } => {
                branches.iter().map(StreamSpec::filter_count).sum()
            }
            StreamSpec::FeedbackLoop(fl) => {
                fl.body.filter_count() + fl.feedback.as_ref().map_or(0, |f| f.filter_count())
            }
        }
    }
}
