//! User-defined filters.

use crate::ir::WorkFunction;

/// A named filter: the leaf of hierarchical stream composition.
///
/// User filters have at most one input and one output port; fan-out and
/// fan-in are expressed with split-join constructs, whose splitter/joiner
/// nodes are generated during flattening (they are the only multi-port
/// nodes in a [`super::FlatGraph`]).
///
/// # Examples
///
/// ```
/// use streamir::graph::FilterSpec;
/// use streamir::ir::{identity, ElemTy};
///
/// let f = FilterSpec::new("pass", identity(ElemTy::F32));
/// assert_eq!(f.name(), "pass");
/// assert_eq!(f.work().pop_rate(0), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FilterSpec {
    name: String,
    work: WorkFunction,
}

impl FilterSpec {
    /// Creates a filter from a name and a validated work function.
    #[must_use]
    pub fn new(name: impl Into<String>, work: WorkFunction) -> FilterSpec {
        FilterSpec {
            name: name.into(),
            work,
        }
    }

    /// The filter's diagnostic name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The filter's work function.
    #[must_use]
    pub fn work(&self) -> &WorkFunction {
        &self.work
    }

    /// Decomposes into `(name, work)`.
    #[must_use]
    pub fn into_parts(self) -> (String, WorkFunction) {
        (self.name, self.work)
    }
}
