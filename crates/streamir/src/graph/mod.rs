//! Stream graphs: hierarchical composition and the flattened form.
//!
//! Programs are assembled as a tree of [`StreamSpec`]s — the StreamIt
//! constructs *pipeline*, *split-join* and *feedback loop* — whose leaves
//! are [`FilterSpec`]s. [`StreamSpec::flatten`] lowers the tree to a
//! [`FlatGraph`]: plain filters plus explicit splitter/joiner nodes
//! connected by typed FIFO channels, the representation every later phase
//! (steady-state solving, profiling, ILP scheduling, code generation)
//! operates on.

mod dot;
mod filter;
mod flat;
mod flatten;
mod spec;

pub use dot::DotAnnotations;
pub use filter::FilterSpec;
pub use flat::{Edge, EdgeId, FlatGraph, Node, NodeId, Role};
pub use spec::{FeedbackLoopSpec, SplitterKind, StreamSpec};
