//! The flattened stream graph.

use std::collections::VecDeque;

use crate::ir::{ElemTy, Scalar, WorkFunction};
use crate::{Error, Result};

/// Index of a node in a [`FlatGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Index of a channel (edge) in a [`FlatGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

/// What kind of node this is; splitters and joiners are the data-movement
/// nodes generated during flattening (the paper calls them "bandwidth
/// hungry by nature, since they only move data around").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A user filter.
    Filter,
    /// A generated splitter (duplicate or round-robin).
    Splitter,
    /// A generated round-robin joiner.
    Joiner,
}

/// A node of the flat graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// Diagnostic name (unique within the graph, suffix-disambiguated).
    pub name: String,
    /// The node's work function.
    pub work: WorkFunction,
    /// Filter / splitter / joiner.
    pub role: Role,
}

/// A FIFO channel between two node ports.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Producer node.
    pub src: NodeId,
    /// Producer output port.
    pub src_port: u8,
    /// Consumer node.
    pub dst: NodeId,
    /// Consumer input port.
    pub dst_port: u8,
    /// Token type carried.
    pub elem: ElemTy,
    /// Tokens pre-queued before the first firing (`m_uv` in the paper's
    /// admissibility condition; non-empty only on feedback edges).
    pub initial: Vec<Scalar>,
}

/// A flattened stream graph: filters plus generated splitters/joiners,
/// connected by typed channels, with at most one external input port and
/// one external output port.
///
/// Construct via [`crate::graph::StreamSpec::flatten`]; a `FlatGraph` value
/// satisfies the structural invariants (all internal ports connected exactly
/// once, matching element types).
#[derive(Debug, Clone)]
pub struct FlatGraph {
    pub(crate) nodes: Vec<Node>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) input: Option<NodeId>,
    pub(crate) output: Option<NodeId>,
}

impl FlatGraph {
    /// All nodes, indexable by [`NodeId`].
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this graph.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// All channels, indexable by [`EdgeId`].
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The channel with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this graph.
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0 as usize]
    }

    /// The node whose input port 0 is fed externally, if any.
    #[must_use]
    pub fn input(&self) -> Option<NodeId> {
        self.input
    }

    /// The node whose output port 0 is collected externally, if any.
    #[must_use]
    pub fn output(&self) -> Option<NodeId> {
        self.output
    }

    /// Ids of channels entering `node`, ordered by destination port.
    pub fn in_edges(&self, node: NodeId) -> Vec<EdgeId> {
        let mut v: Vec<EdgeId> = (0..self.edges.len() as u32)
            .map(EdgeId)
            .filter(|&e| self.edges[e.0 as usize].dst == node)
            .collect();
        v.sort_by_key(|&e| self.edges[e.0 as usize].dst_port);
        v
    }

    /// Ids of channels leaving `node`, ordered by source port.
    pub fn out_edges(&self, node: NodeId) -> Vec<EdgeId> {
        let mut v: Vec<EdgeId> = (0..self.edges.len() as u32)
            .map(EdgeId)
            .filter(|&e| self.edges[e.0 as usize].src == node)
            .collect();
        v.sort_by_key(|&e| self.edges[e.0 as usize].src_port);
        v
    }

    /// Tokens the producer pushes on this channel per firing.
    #[must_use]
    pub fn push_rate(&self, e: EdgeId) -> u32 {
        let edge = self.edge(e);
        self.node(edge.src).work.push_rate(edge.src_port)
    }

    /// Tokens the consumer pops from this channel per firing.
    #[must_use]
    pub fn pop_rate(&self, e: EdgeId) -> u32 {
        let edge = self.edge(e);
        self.node(edge.dst).work.pop_rate(edge.dst_port)
    }

    /// Tokens that must be queued for the consumer's firing rule (peek
    /// depth, at least the pop rate).
    #[must_use]
    pub fn peek_rate(&self, e: EdgeId) -> u32 {
        let edge = self.edge(e);
        self.node(edge.dst).work.peek_rate(edge.dst_port)
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for a graph with no nodes (never produced by flattening).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Count of user filters whose work function peeks beyond what it pops
    /// (the "Peeking Filters" column of Table I).
    #[must_use]
    pub fn peeking_filter_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.role == Role::Filter && n.work.is_peeking())
            .count()
    }

    /// A topological order of the nodes, treating channels that carry
    /// initial tokens as back edges (they are what breaks feedback cycles).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidGraph`] if a cycle exists with no initial
    /// tokens anywhere on it — such a graph can never fire.
    pub fn topo_order(&self) -> Result<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            if e.initial.is_empty() {
                indeg[e.dst.0 as usize] += 1;
            }
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            order.push(NodeId(i as u32));
            for e in &self.edges {
                if e.src.0 as usize == i && e.initial.is_empty() {
                    let d = e.dst.0 as usize;
                    indeg[d] -= 1;
                    if indeg[d] == 0 {
                        queue.push_back(d);
                    }
                }
            }
        }
        if order.len() != n {
            return Err(Error::InvalidGraph(
                "cycle without initial tokens; the graph can never fire".into(),
            ));
        }
        Ok(order)
    }
}
