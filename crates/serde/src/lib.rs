//! A minimal, dependency-free stand-in for the subset of `serde` this
//! workspace uses, so reports serialize to JSON with no network access
//! (the real crate cannot be fetched in offline CI — the same reason the
//! in-tree `proptest` shim exists).
//!
//! Differences from the real crate, by design:
//!
//! * [`Serialize`] has a single `to_value` method producing a [`Value`]
//!   tree — there is no `Serializer` visitor layer and no zero-copy
//!   path. Every serializable quantity in this workspace is a small
//!   report, so the intermediate tree costs nothing that matters.
//! * There is no `Deserialize`; the few places that read JSON back (the
//!   compilation cache's disk entries, tests over bench artifacts) parse
//!   into [`Value`] and pick fields out explicitly.
//! * `#[derive(Serialize)]` (re-exported from the in-tree
//!   `serde_derive`) supports non-generic structs and enums only, with
//!   `serde_json`'s externally-tagged enum representation.
//!
//! Object key order is the struct's field order, making output
//! deterministic — which the compilation cache's content hashing and the
//! bench-artifact tests rely on.

pub use serde_derive::Serialize;

use std::collections::BTreeMap;
use std::time::Duration;

/// A JSON value tree. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Integers up to 2^53 round-trip exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` elsewhere or when absent.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a u64, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Types that can render themselves as a JSON [`Value`].
pub trait Serialize {
    /// The value tree for this datum.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
    )*};
}
impl_serialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Duration {
    /// Matches the real serde's `{ "secs": ..., "nanos": ... }` shape.
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::Num(self.as_secs() as f64)),
            (
                "nanos".to_string(),
                Value::Num(f64::from(self.subsec_nanos())),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(7u32.to_value(), Value::Num(7.0));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::Num(1.0), Value::Num(2.0)])
        );
    }

    #[test]
    fn duration_matches_serde_shape() {
        let d = Duration::new(3, 500);
        let v = d.to_value();
        assert_eq!(v.get("secs").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("nanos").and_then(Value::as_u64), Some(500));
    }

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![("k".into(), Value::Num(4.0))]);
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(4));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Str("s".into()).as_str(), Some("s"));
    }
}
