//! The chaos soak harness behind `cargo run --bin chaos_soak`.
//!
//! Serves the StreamIt benchmark suite through the event engine under a
//! seeded fault storm ([`swpipe::serve::ChaosStorm`]): bursty hang
//! trains, correlated corruption clusters, a background transient
//! failure rate, and a mid-trace device brownout that shrinks the
//! usable SM range and forces a partition recut. The online resilience
//! controller runs live — retry-rate EWMAs switch noisy tenants to the
//! tail-latency policy and pick per-tenant checkpoint commit intervals.
//!
//! After the storm, the harness asserts the global soak invariants:
//!
//! 1. **No job lost or double-counted** — every submitted job gets
//!    exactly one verdict, and accepted + rejected counts reconcile
//!    with the trace.
//! 2. **Truthful billing** — per-job billing is asserted inside the
//!    executor ([`gpusim::LaunchStats::check_billing`]: the disjoint
//!    fault components sum to the fault overhead, which never exceeds
//!    wall cycles); the report level re-checks that no tenant's fault
//!    overhead exceeds its total cycles and that token counts
//!    reconcile with the delivered outputs.
//! 3. **Byte-identical survivors** — every job that completes under
//!    the storm produces output byte-identical to a fault-free golden
//!    run of the same trace (faults and brownouts may change *when*,
//!    never *what*).
//! 4. **Deterministic replay** — re-running the same storm seed
//!    reproduces the controller's decision log and the engine's event
//!    trace byte-for-byte.
//!
//! Writes `CHAOS_soak.json` — the decision log and headline counters —
//! for the CI artifact upload.

use streamir::ir::Scalar;
use swpipe::serve::{
    BrownoutSpec, ChaosStorm, ControllerDecision, EventEngine, Job, QosClass, ResilienceOptions,
    ServeOptions, ServeReport, TraceEvent, Verdict,
};

/// One soak configuration: which storm, how much trace, which knobs.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Storm seed (drives burst placement and the background draws).
    pub seed: u64,
    /// Named storm profile (see [`storm_profile`]).
    pub profile: String,
    /// Round-robin arrival rounds over the benchmark suite.
    pub rounds: usize,
    /// Cap on the number of jobs served (the trace is truncated);
    /// `None` serves every job the rounds generate.
    pub jobs: Option<usize>,
    /// Steady-state iterations per job.
    pub iterations: u64,
    /// Whether the adaptive controller may switch policies (interval
    /// selection and the raised retry budget are always on — a storm
    /// pins fault trains the default budget of 3 could exhaust).
    pub adaptive: bool,
    /// Whether a mid-trace brownout shrinks the device.
    pub brownout: bool,
    /// Whether the storm run dispatches steady states as captured-graph
    /// replays. On by default so every storm in the matrix covers
    /// retries, checkpoint replay, and brownout recuts on the
    /// graph-dispatch path; the golden twin always host-launches, so
    /// the byte-identity invariant doubles as the dispatch
    /// differential.
    pub graph: bool,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            seed: 0xC4A0_55EE,
            profile: "default".to_string(),
            rounds: 2,
            jobs: None,
            // Deep enough that coarsened schedules still have a steady
            // window (launch rounds > max_stage) — the storm must
            // exercise captured-graph replays, not just the fill/drain
            // host launches.
            iterations: 16,
            adaptive: true,
            brownout: true,
            graph: true,
        }
    }
}

/// The named storm profiles the CI matrix and local repro share:
/// `default` (bursts + background), `hangs` (hang trains only),
/// `corruption` (corruption clusters only), `quiet` (background noise
/// only, no pinned bursts). Returns `None` for an unknown name so the
/// CLI can fail loudly.
///
/// The emphasized profiles zero out the other burst category and keep
/// their own worst-case pinned chain (all bursts landing adjacent) at
/// six consecutive faults — below the soak's retry budget of 8, so
/// every storm the harness ships is survivable regardless of where
/// the seed places the bursts.
#[must_use]
pub fn storm_profile(name: &str, seed: u64) -> Option<ChaosStorm> {
    let base = ChaosStorm {
        seed,
        horizon_attempts: 24,
        ..ChaosStorm::default()
    };
    match name {
        "default" => Some(base),
        "hangs" => Some(ChaosStorm {
            hang_trains: 3,
            train_len: 2,
            corruption_clusters: 0,
            ..base
        }),
        "corruption" => Some(ChaosStorm {
            corruption_clusters: 3,
            cluster_len: 2,
            hang_trains: 0,
            ..base
        }),
        "quiet" => Some(ChaosStorm {
            hang_trains: 0,
            corruption_clusters: 0,
            ..base
        }),
        _ => None,
    }
}

/// Everything one soak run produces, for invariant checking.
pub struct SoakRun {
    /// Per input job: `Some(outputs)` when completed, `None` when
    /// rejected by admission.
    pub outputs: Vec<Option<Vec<Scalar>>>,
    /// The serve report.
    pub report: ServeReport,
    /// The controller's decision log.
    pub decisions: Vec<ControllerDecision>,
    /// The engine's processed-event trace.
    pub events: Vec<TraceEvent>,
}

/// The storm a soak config injects: the config's named profile at the
/// config's seed. All profiles keep `horizon_attempts` pulled in close
/// to a job's actual attempt count so the pinned bursts land inside
/// real runs (and, because attempt ordinals restart per run, hit every
/// job the same way — correlated faults, not independent noise).
///
/// # Panics
///
/// Panics on an unknown profile name.
#[must_use]
pub fn storm_for(cfg: &SoakConfig) -> ChaosStorm {
    storm_profile(&cfg.profile, cfg.seed)
        .unwrap_or_else(|| panic!("unknown storm profile {:?}", cfg.profile))
}

/// The deterministic arrival trace: every benchmark as its own tenant,
/// `rounds` round-robin rounds, stable per-tenant QoS.
#[must_use]
pub fn build_trace(rounds: usize, iterations: u64) -> Vec<(Job, f64)> {
    let suite = streambench::suite();
    let mut trace = Vec::new();
    let mut now = 0.0;
    for _ in 0..rounds {
        for (i, b) in suite.iter().enumerate() {
            trace.push((
                Job {
                    tenant: b.name.to_string(),
                    graph: b.spec.flatten().expect("benchmark flattens"),
                    input: b.input,
                    iterations,
                    qos: if i % 2 == 0 {
                        QosClass::Batch
                    } else {
                        QosClass::Interactive
                    },
                },
                now,
            ));
            now += 0.05;
        }
        now += 1.0;
    }
    trace
}

/// The trace a soak config serves: [`build_trace`] over the config's
/// rounds, truncated to the config's job cap when one is set.
#[must_use]
pub fn trace_for(cfg: &SoakConfig) -> Vec<(Job, f64)> {
    let mut trace = build_trace(cfg.rounds, cfg.iterations);
    if let Some(cap) = cfg.jobs {
        trace.truncate(cap);
    }
    trace
}

/// Runs one soak: the storm's fault plan armed, the controller per
/// `cfg`, and (optionally) a brownout to 10 of the 16 SMs halfway
/// through the arrival window.
///
/// # Panics
///
/// Panics when the engine errors — under the retry budget the soak
/// arms, a storm the harness ships must be survivable, so an executor
/// give-up is a harness bug.
#[must_use]
pub fn run_soak(cfg: &SoakConfig) -> SoakRun {
    run_with_plan(cfg, true)
}

/// The fault-free golden twin of [`run_soak`]: same trace, same
/// engine configuration, no fault plan, no brownout — and always
/// host-launched, even when the storm run graph-dispatches. Survivor
/// outputs from the storm run must be byte-identical to this, which
/// makes the invariant a compound one: neither faults nor the dispatch
/// mode may change *what* a job computes, only *when*.
///
/// # Panics
///
/// Panics when the engine errors (fault-free runs must serve).
#[must_use]
pub fn run_golden(cfg: &SoakConfig) -> SoakRun {
    run_with_plan(cfg, false)
}

fn run_with_plan(cfg: &SoakConfig, stormy: bool) -> SoakRun {
    let opts = ServeOptions {
        fault_plan: stormy.then(|| storm_for(cfg).fault_plan()),
        graph_dispatch: stormy && cfg.graph,
        resilience: ResilienceOptions {
            enabled: true,
            // Policy switching is gated by the upper band; pushing it
            // out of reach freezes policies while keeping interval
            // adaptation and the raised budget.
            retry_max_attempts: Some(8),
            ..ResilienceOptions::default()
        },
        retry_warn_threshold: if cfg.adaptive { 0.05 } else { f64::INFINITY },
        ..ServeOptions::default()
    };
    let mut engine = EventEngine::new(opts);
    if stormy && cfg.brownout {
        let last_arrival = cfg.rounds as f64 * (streambench::suite().len() as f64 * 0.05 + 1.0);
        engine = engine.with_brownout(BrownoutSpec {
            at_secs: last_arrival / 2.0,
            total_sms: 10,
        });
    }
    let trace = trace_for(cfg);
    let verdicts = engine.serve_trace(&trace).expect("soak trace serves");
    let outputs = verdicts
        .into_iter()
        .map(|v| match v {
            Verdict::Completed(r) => Some(r.outputs),
            Verdict::Rejected { .. } => None,
        })
        .collect();
    SoakRun {
        outputs,
        report: engine.report(),
        decisions: engine.decisions().to_vec(),
        events: engine.trace().to_vec(),
    }
}

/// Runs the storm, its golden twin, and a same-seed replay, and checks
/// every soak invariant. Returns the storm run for reporting.
///
/// # Panics
///
/// Panics with a description of the first violated invariant.
#[must_use]
pub fn assert_invariants(cfg: &SoakConfig) -> SoakRun {
    let stormy = run_soak(cfg);
    let golden = run_golden(cfg);
    let replay = run_soak(cfg);
    let n_jobs = trace_for(cfg).len();

    // 1. No job lost or double-counted.
    assert_eq!(stormy.outputs.len(), n_jobs, "one verdict per input job");
    let completed = stormy.outputs.iter().filter(|o| o.is_some()).count();
    let accepted: u64 = stormy.report.tenants.iter().map(|t| t.jobs_accepted).sum();
    let rejected: u64 = stormy.report.tenants.iter().map(|t| t.jobs_rejected).sum();
    assert_eq!(accepted, completed as u64, "accepted == completed verdicts");
    assert_eq!(
        accepted + rejected,
        n_jobs as u64,
        "accepted + rejected == submitted"
    );

    // 2. Truthful billing: fault overhead within wall cycles per
    // tenant, and token counts reconcile with delivered outputs.
    for t in &stormy.report.tenants {
        assert!(
            (0.0..=1.0).contains(&t.fault_overhead_share),
            "{}: fault overhead exceeds wall cycles (share {})",
            t.tenant,
            t.fault_overhead_share
        );
    }
    let tokens_delivered: u64 = stormy
        .outputs
        .iter()
        .flatten()
        .map(|o| o.len() as u64)
        .sum();
    let tokens_billed: f64 = stormy
        .report
        .tenants
        .iter()
        .map(|t| t.throughput_tokens_per_sec * stormy.report.makespan_secs)
        .sum();
    assert!(
        (tokens_billed - tokens_delivered as f64).abs() < 1e-6 * (1.0 + tokens_delivered as f64),
        "billed tokens {tokens_billed} != delivered {tokens_delivered}"
    );

    // 3. Surviving outputs byte-identical to the fault-free golden run.
    assert_eq!(golden.outputs.len(), stormy.outputs.len());
    let mut compared = 0;
    for (i, (s, g)) in stormy.outputs.iter().zip(&golden.outputs).enumerate() {
        if let (Some(s), Some(g)) = (s, g) {
            assert_eq!(s, g, "job {i}: storm output diverges from golden");
            compared += 1;
        }
    }
    assert!(compared > 0, "no surviving jobs to compare");

    // 4. Same-seed replay reproduces decisions and events exactly.
    assert_eq!(
        stormy.decisions, replay.decisions,
        "controller decisions must replay deterministically"
    );
    assert_eq!(
        stormy.events, replay.events,
        "event trace must replay deterministically"
    );

    // 5. When the storm runs graph-dispatched, the coverage must be
    // real: steady states actually replayed from captured graphs (the
    // storm's retries and checkpoint restores therefore exercised the
    // replay path, not just host launches), and the launch path got
    // cheaper than the host-launched golden twin's.
    if cfg.graph {
        assert!(
            stormy.report.graph_replays > 0,
            "graph-dispatched storm replayed nothing: the soak's \
             iterations are too shallow for any steady window"
        );
        assert!(
            stormy.report.launch_path_cycles < golden.report.launch_path_cycles,
            "graph dispatch must cut launch-path cycles ({} vs golden {})",
            stormy.report.launch_path_cycles,
            golden.report.launch_path_cycles
        );
    }
    stormy
}

/// Serializable summary for `CHAOS_soak.json`.
#[derive(serde::Serialize)]
struct SoakSummary {
    seed: u64,
    profile: String,
    jobs: usize,
    completed: usize,
    policy_switches: u64,
    rebalances: u64,
    cache_hit_rate: f64,
    makespan_secs: f64,
    graph_dispatch: bool,
    graph_replays: u64,
    launch_path_cycles: u64,
    decisions: Vec<ControllerDecision>,
}

fn parse_u64(s: &str) -> Option<u64> {
    s.strip_prefix("0x")
        .map_or_else(|| s.parse().ok(), |h| u64::from_str_radix(h, 16).ok())
}

/// Entry point for the `chaos_soak` binary: a storm matrix of seeds,
/// each soaked and invariant-checked, with the last seed's decision
/// log exported.
///
/// Flags — one invocation path for the CI matrix and local repro:
/// `--seed N` (repeatable; decimal or `0x` hex), `--profile NAME`
/// (see [`storm_profile`]), `--rounds N`, `--jobs N` (truncate the
/// trace to the first N jobs), `--host-launch` (disable the default
/// graph dispatch so the storm exercises pure host launches). Bare
/// integer arguments are still accepted as seeds for back-compat with
/// older scripts.
///
/// # Panics
///
/// Panics on a malformed flag, an unknown profile, a violated soak
/// invariant, or when the report cannot be written.
pub fn main() {
    let mut seeds: Vec<u64> = Vec::new();
    let mut base = SoakConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--seed" => {
                let v = val("--seed");
                seeds.push(parse_u64(&v).unwrap_or_else(|| panic!("bad --seed {v:?}")));
            }
            "--profile" => {
                let name = val("--profile");
                assert!(
                    storm_profile(&name, 0).is_some(),
                    "unknown storm profile {name:?} (try default, hangs, corruption, quiet)"
                );
                base.profile = name;
            }
            "--rounds" => {
                let v = val("--rounds");
                base.rounds = v.parse().unwrap_or_else(|_| panic!("bad --rounds {v:?}"));
            }
            "--jobs" => {
                let v = val("--jobs");
                base.jobs = Some(v.parse().unwrap_or_else(|_| panic!("bad --jobs {v:?}")));
            }
            "--host-launch" => base.graph = false,
            other => match parse_u64(other) {
                Some(seed) => seeds.push(seed),
                None => panic!("unknown flag {other}"),
            },
        }
    }
    if seeds.is_empty() {
        seeds = vec![0xC4A0_55EE, 0x0005_EED5];
    }
    let mut last: Option<(u64, SoakRun)> = None;
    for seed in seeds {
        let cfg = SoakConfig {
            seed,
            ..base.clone()
        };
        let run = assert_invariants(&cfg);
        let completed = run.outputs.iter().filter(|o| o.is_some()).count();
        println!(
            "seed {seed:#x} ({} storm): {} jobs, {completed} completed, {} policy switch(es), \
             {} rebalance(s), {} controller decision(s), makespan {:.3}s — invariants hold",
            cfg.profile,
            run.outputs.len(),
            run.report.policy_switches,
            run.report.rebalances,
            run.decisions.len(),
            run.report.makespan_secs,
        );
        last = Some((seed, run));
    }
    let (seed, run) = last.expect("at least one seed soaked");
    let summary = SoakSummary {
        seed,
        profile: base.profile,
        jobs: run.outputs.len(),
        completed: run.outputs.iter().filter(|o| o.is_some()).count(),
        policy_switches: run.report.policy_switches,
        rebalances: run.report.rebalances,
        cache_hit_rate: run.report.cache_hit_rate,
        makespan_secs: run.report.makespan_secs,
        graph_dispatch: base.graph,
        graph_replays: run.report.graph_replays,
        launch_path_cycles: run.report.launch_path_cycles,
        decisions: run.decisions,
    };
    let json = serde_json::to_string_pretty(&summary);
    std::fs::write("CHAOS_soak.json", json).expect("write CHAOS_soak.json");
    println!("wrote CHAOS_soak.json");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_resolve_and_unknown_names_do_not() {
        for name in ["default", "hangs", "corruption", "quiet"] {
            let storm = storm_profile(name, 7).expect(name);
            assert_eq!(storm.seed, 7, "{name}: seed must pass through");
        }
        assert!(storm_profile("meteor", 7).is_none());
        let quiet = storm_profile("quiet", 7).unwrap();
        assert_eq!(quiet.hang_trains, 0);
        assert_eq!(quiet.corruption_clusters, 0);
        // Emphasized profiles must keep their worst-case pinned chain
        // (every burst adjacent) below the soak's retry budget of 8.
        for name in ["hangs", "corruption"] {
            let s = storm_profile(name, 7).unwrap();
            let chain = s.hang_trains * s.train_len + s.corruption_clusters * s.cluster_len;
            assert!(
                chain < 8,
                "{name}: worst-case chain {chain} >= retry budget"
            );
        }
    }

    #[test]
    fn job_cap_truncates_the_trace() {
        let cfg = SoakConfig {
            jobs: Some(3),
            ..SoakConfig::default()
        };
        assert_eq!(trace_for(&cfg).len(), 3);
        let uncapped = SoakConfig::default();
        assert_eq!(
            trace_for(&uncapped).len(),
            build_trace(uncapped.rounds, uncapped.iterations).len()
        );
    }

    #[test]
    fn seed_parsing_accepts_decimal_and_hex() {
        assert_eq!(parse_u64("42"), Some(42));
        assert_eq!(parse_u64("0xC4A055EE"), Some(0xC4A0_55EE));
        assert_eq!(parse_u64("--flag"), None);
    }
}
