//! The `stream-gpu` command-line driver: inspect, compile, and run the
//! benchmark suite's stream programs on the simulated GPU.
//!
//! ```text
//! stream-gpu list                     # the benchmark suite (Table I)
//! stream-gpu dot <name>               # Graphviz DOT of the flattened graph
//! stream-gpu ir <name> <filter>       # pretty-printed kernel IR of one filter
//! stream-gpu compile <name>           # schedule + buffer plan + config report
//! stream-gpu run <name> [iterations]  # execute on the simulated GPU vs CPU
//! ```

use streamir::cpu::{self, CpuCostModel};
use swpipe::exec::{self, CompileOptions, Scheme};
use swpipe::plan::{self, LayoutKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("dot") => with_benchmark(&args, 2, cmd_dot),
        Some("ir") => cmd_ir(&args),
        Some("compile") => with_benchmark(&args, 2, cmd_compile),
        Some("run") => with_benchmark(&args, 2, |b| cmd_run(b, &args)),
        _ => {
            eprint!("{}", USAGE);
            2
        }
    };
    std::process::exit(code);
}

const USAGE: &str = "\
stream-gpu — software pipelined execution of stream programs on a simulated GPU

USAGE:
    stream-gpu list                     list the benchmark suite (Table I)
    stream-gpu dot <name>               Graphviz DOT of the flattened graph
    stream-gpu ir <name> <filter>       pretty-print one filter's kernel IR
    stream-gpu compile <name>           schedule, buffer plan, configuration
    stream-gpu run <name> [iterations]  execute on the simulated GPU (default 8)
";

fn with_benchmark(
    args: &[String],
    need: usize,
    f: impl FnOnce(&streambench::Benchmark) -> i32,
) -> i32 {
    if args.len() < need {
        eprint!("{}", USAGE);
        return 2;
    }
    match streambench::by_name(&args[1]) {
        Some(b) => f(&b),
        None => {
            eprintln!(
                "error: unknown benchmark {:?} (try `stream-gpu list`)",
                args[1]
            );
            2
        }
    }
}

fn cmd_list() -> i32 {
    println!(
        "{:<12} {:>6} {:>8}  description",
        "name", "nodes", "peeking"
    );
    for b in streambench::suite() {
        let g = b.spec.flatten().expect("suite graphs flatten");
        println!(
            "{:<12} {:>6} {:>8}  {}",
            b.name,
            g.len(),
            g.peeking_filter_count(),
            b.description
        );
    }
    0
}

fn cmd_dot(b: &streambench::Benchmark) -> i32 {
    match b.spec.flatten() {
        Ok(g) => {
            print!("{}", g.to_dot(&b.name.to_lowercase()));
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

fn cmd_ir(args: &[String]) -> i32 {
    if args.len() < 3 {
        eprint!("{}", USAGE);
        return 2;
    }
    with_benchmark(args, 3, |b| {
        let g = b.spec.flatten().expect("flattens");
        let wanted = &args[2];
        match g.nodes().iter().find(|n| &n.name == wanted) {
            Some(node) => {
                println!("// {} :: {}", b.name, node.name);
                print!("{}", node.work.to_pretty());
                0
            }
            None => {
                eprintln!(
                    "error: no filter named {wanted:?} in {}; nodes are:",
                    b.name
                );
                for n in g.nodes() {
                    eprintln!("  {}", n.name);
                }
                2
            }
        }
    })
}

fn compile(b: &streambench::Benchmark) -> Result<exec::Compiled, swpipe::Error> {
    let graph = b.spec.flatten().map_err(swpipe::Error::Stream)?;
    exec::compile(&graph, &CompileOptions::small_test())
}

fn cmd_compile(b: &streambench::Benchmark) -> i32 {
    match compile(b) {
        Ok(c) => {
            println!("{}", swpipe::report::config_summary(&c));
            println!();
            print!("{}", swpipe::report::schedule_table(&c));
            println!();
            let p = plan::plan(&c.graph, &c.ig, Some(&c.schedule), 8, LayoutKind::Optimized);
            print!("{}", swpipe::report::buffer_table(&c, &p));
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

fn cmd_run(b: &streambench::Benchmark, args: &[String]) -> i32 {
    let iters: u64 = match args.get(2).map(|s| s.parse()) {
        None => 8,
        Some(Ok(n)) if n > 0 => n,
        Some(_) => {
            eprintln!("error: iterations must be a positive integer");
            return 2;
        }
    };
    let c = match compile(b) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    // Size the input to cover both the GPU run and the CPU reference
    // (whose primitive iteration may be large).
    let steady = streamir::sdf::solve(&c.graph).expect("steady state");
    let per = steady.input_tokens_per_iteration(&c.graph).max(1);
    let n_input = exec::required_input(&c, iters);
    let input = (b.input)((n_input + 2 * per + 64) as usize);
    let run = match exec::execute(
        &c,
        Scheme::Swp { coarsening: 1 },
        iters,
        &input[..n_input as usize],
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };

    // Always check against the CPU reference.
    let cpu_iters = n_input.div_ceil(per) + 1;
    let cpu = cpu::run(
        &c.graph,
        &steady,
        cpu_iters,
        &input,
        &CpuCostModel::default(),
    )
    .expect("cpu reference runs");
    let n = run.outputs.len().min(cpu.outputs.len());
    if run.outputs[..n] != cpu.outputs[..n] {
        eprintln!("MISMATCH: GPU output diverges from the CPU reference");
        return 1;
    }

    println!(
        "{}: {} steady iterations, {} output tokens (bit-exact vs CPU reference)",
        b.name,
        iters,
        run.outputs.len()
    );
    println!(
        "modeled time {:.3e}s over {} launches; {} device transactions \
         ({:.2} per access)",
        run.time_secs,
        run.launches,
        run.stats.mem_transactions,
        run.stats.transactions_per_access().unwrap_or(0.0)
    );
    let first: Vec<String> = run
        .outputs
        .iter()
        .take(8)
        .map(ToString::to_string)
        .collect();
    println!("first outputs: [{}]", first.join(", "));
    0
}
