//! The fleet serving benchmark behind `cargo run --bin fleet_bench`.
//!
//! Serves the eight StreamIt benchmarks as eight tenants of a
//! [`swpipe::fleet::FleetEngine`] under three configurations:
//!
//! 1. **solo** — one device, hedging off, replication 1: the
//!    single-device disk-tier baseline the fleet's cross-device hit
//!    rate is judged against;
//! 2. **fleet** — N devices, hedging on, replication 2, no faults:
//!    the nominal fleet;
//! 3. **storm** — the same fleet under a seeded [`FleetStorm`]
//!    (rolling device kills, a rack brownout, a partition train),
//!    proving completion-or-rejection: zero jobs lost.
//!
//! Writes `BENCH_fleet.json` with all three reports, and in `--chaos`
//! mode writes `FLEET_chaos.json` carrying the router's full decision
//! log — the determinism witness the CI chaos job uploads.

use serde::Serialize;
use swpipe::fleet::{
    FleetEngine, FleetOptions, FleetReport, FleetStorm, FleetVerdict, HedgeOptions, RackBrownout,
    RouterDecision,
};
use swpipe::serve::{Job, QosClass, ServeOptions};

/// Arrival rounds of the full benchmark (each round submits all eight
/// benchmarks once).
pub const FULL_ROUNDS: usize = 6;
/// Steady-state iterations per job in the full benchmark.
pub const FULL_ITERATIONS: u64 = 4;
/// Fleet size of the full benchmark. Eight devices give the eight
/// benchmark tenants one-to-two-tenant homes, so slice widths settle
/// fast and the replicated store's cross-device hits dominate; smaller
/// fleets (more tenants per home) see more width churn from demand
/// rebalancing and correspondingly more honest compile misses.
pub const FULL_DEVICES: u32 = 8;
/// Default storm seed. Chosen so the rolling kills land on devices
/// with jobs in flight — the storm run must actually exercise
/// checkpoint-shipping failover, not just kill idle fleet members.
pub const FULL_SEED: u64 = 0xF1EE_700B;
/// Default iterations per job in `--chaos` mode. Deeper than
/// [`FULL_ITERATIONS`] so every benchmark's modulo schedule has a
/// steady window to capture — the chaos run dispatches steady states
/// as graph replays, and a device kill must be able to land mid-replay.
pub const CHAOS_ITERATIONS: u64 = 48;

/// The deterministic arrival trace: `rounds` round-robin rounds over
/// the benchmark suite, 50 ms apart within a round, 1 s between rounds,
/// QoS alternating across the suite so both fault policies serve.
#[must_use]
pub fn fleet_trace(rounds: usize, iterations: u64) -> Vec<(Job, f64)> {
    let suite = streambench::suite();
    let mut trace = Vec::new();
    let mut now = 0.0;
    for _round in 0..rounds {
        for (i, b) in suite.iter().enumerate() {
            trace.push((
                Job {
                    tenant: b.name.to_string(),
                    graph: b.spec.flatten().expect("benchmark flattens"),
                    input: b.input,
                    iterations,
                    qos: if i % 2 == 0 {
                        QosClass::Batch
                    } else {
                        QosClass::Interactive
                    },
                },
                now,
            ));
            now += 0.05;
        }
        now += 1.0;
    }
    trace
}

/// The per-device serving configuration all three runs share. No
/// launch-grain fault plan: device-grain faults are the fleet's own
/// axis, and keeping launches fault-free makes the solo run a clean
/// byte-identical reference for the differential tests.
#[must_use]
pub fn base_serve_options() -> ServeOptions {
    ServeOptions::default()
}

/// The single-device baseline: no replication to lean on, no second
/// device to hedge to.
#[must_use]
pub fn solo_options() -> FleetOptions {
    FleetOptions {
        devices: 1,
        base: base_serve_options(),
        replication: 1,
        hedge: HedgeOptions {
            enabled: false,
            ..HedgeOptions::default()
        },
        ..FleetOptions::default()
    }
}

/// The nominal fleet: `devices` members, replication 2, hedging on.
#[must_use]
pub fn fleet_options(devices: u32) -> FleetOptions {
    FleetOptions {
        devices,
        base: base_serve_options(),
        replication: 2,
        ..FleetOptions::default()
    }
}

/// The seeded storm the chaos configuration runs under: two rolling
/// kills (never below two live devices), a partition train, and a
/// one-device rack brownout mid-trace.
#[must_use]
pub fn bench_storm(seed: u64) -> FleetStorm {
    FleetStorm {
        seed,
        kills: 2,
        // Land the kills inside the arrival bursts (rounds start at
        // 0.0, 1.4, 2.8, …; cache-miss jobs stay in flight for the
        // 0.5 s compile penalty) so in-flight jobs actually fail over
        // instead of the storm only hitting idle devices.
        kill_start_secs: 0.25,
        kill_every_secs: 1.4,
        min_alive: 2,
        partitions: 2,
        partition_start_secs: 2.9,
        partition_every_secs: 1.4,
        partition_heal_secs: 0.6,
        rack: Some(RackBrownout {
            at_secs: 4.3,
            devices: 1,
            total_sms: 8,
            heal_secs: 1.0,
        }),
    }
}

/// The storm configuration: the nominal fleet plus `bench_storm(seed)`.
#[must_use]
pub fn storm_options(devices: u32, seed: u64) -> FleetOptions {
    FleetOptions {
        device_faults: bench_storm(seed).device_fault_plan(devices),
        ..fleet_options(devices)
    }
}

/// The `--chaos` configuration: the storm fleet with graph dispatch
/// on, so rolling kills and the brownout land on jobs whose steady
/// states run as captured-graph replays — failover must re-enter the
/// captured graph from the shipped checkpoint, with the re-capture
/// billed into the failover bucket.
#[must_use]
pub fn chaos_options(devices: u32, seed: u64) -> FleetOptions {
    let mut opts = storm_options(devices, seed);
    opts.base.graph_dispatch = true;
    opts
}

/// Runs one fleet configuration over a trace, returning the report,
/// the router's decision log, and the verdicts.
///
/// # Panics
///
/// Panics when compilation or execution fails — the trace is paced
/// below saturation, so a hard error is a runtime bug.
#[must_use]
pub fn run_fleet(
    opts: FleetOptions,
    trace: &[(Job, f64)],
) -> (FleetReport, Vec<RouterDecision>, Vec<FleetVerdict>) {
    let mut engine = FleetEngine::new(opts);
    let verdicts = engine.run(trace).expect("fleet trace serves");
    (engine.report(), engine.router_log().to_vec(), verdicts)
}

/// The three-configuration benchmark artifact (`BENCH_fleet.json`).
#[derive(Debug, Clone, Serialize)]
pub struct FleetBenchReport {
    /// Arrival rounds served.
    pub rounds: u64,
    /// Iterations per job.
    pub iterations: u64,
    /// Fleet size of the fleet/storm configurations.
    pub devices: u32,
    /// Storm seed.
    pub storm_seed: u64,
    /// Single-device baseline.
    pub solo: FleetReport,
    /// Nominal fleet.
    pub fleet: FleetReport,
    /// Fleet under the storm.
    pub storm: FleetReport,
}

/// Runs all three configurations and checks the fleet acceptance
/// criteria.
///
/// # Panics
///
/// Panics when the fleet's cross-device artifact-store hit rate fails
/// to beat the solo disk-tier hit rate, or when the storm loses a job.
#[must_use]
pub fn run_bench(rounds: usize, iterations: u64, devices: u32, seed: u64) -> FleetBenchReport {
    let trace = fleet_trace(rounds, iterations);

    let (solo, _, _) = run_fleet(solo_options(), &trace);
    let (fleet, _, _) = run_fleet(fleet_options(devices), &trace);
    let (storm, _, _) = run_fleet(storm_options(devices, seed), &trace);

    assert!(
        fleet.store.hit_rate() > solo.store.hit_rate(),
        "cross-device hit rate {:.3} must beat solo disk tier {:.3}",
        fleet.store.hit_rate(),
        solo.store.hit_rate()
    );
    assert_eq!(
        storm.jobs_lost, 0,
        "storm lost jobs: every job must complete or be rejected"
    );
    assert!(
        storm.failovers > 0,
        "the storm must catch at least one in-flight job (failover path unexercised)"
    );
    for (name, r) in [("solo", &solo), ("fleet", &fleet), ("storm", &storm)] {
        assert!(r.artifacts > 0, "{name}: no artifacts dispatched");
        assert_eq!(
            r.certified, r.artifacts,
            "{name}: every dispatched artifact must carry a verified isolation certificate"
        );
    }

    FleetBenchReport {
        rounds: rounds as u64,
        iterations,
        devices,
        storm_seed: seed,
        solo,
        fleet,
        storm,
    }
}

/// The chaos artifact (`FLEET_chaos.json`): the storm report plus the
/// router's full decision log.
#[derive(Debug, Clone, Serialize)]
pub struct FleetChaosArtifact {
    /// Storm seed.
    pub seed: u64,
    /// Fleet size.
    pub devices: u32,
    /// Whether the storm run dispatched steady states as captured-graph
    /// replays (the default for `--chaos`).
    pub graph_dispatch: bool,
    /// Launch-path cycles of a host-launched run of the same storm —
    /// the baseline the graph run's `report.launch_path_cycles` is
    /// judged against.
    pub host_launch_path_cycles: u64,
    /// `host_launch_path_cycles - report.launch_path_cycles`: the
    /// launch-overhead cycles graph dispatch eliminated under the storm.
    pub saved_launch_cycles: u64,
    /// The storm-run report.
    pub report: FleetReport,
    /// Every router decision, in order — byte-identical across
    /// same-seed replays.
    pub decisions: Vec<RouterDecision>,
}

/// Compares the committed `BENCH_fleet.json` against a fresh
/// three-configuration run — the fleet counterpart of
/// `serve_bench --check`. Drift is **schema drift** (recursive key
/// structure differs) or **headline-counter drift**: job accounting,
/// artifact-store hits/misses, failovers, and scheduler
/// `search_invocations` are all deterministic in virtual time, so they
/// must reproduce exactly per configuration.
///
/// # Errors
///
/// Returns every drift found, one human-readable line each.
pub fn check_drift(fresh: &FleetBenchReport, committed: &str) -> Result<(), Vec<String>> {
    use crate::serve_bench::{lookup, schema_paths};
    let fresh_v =
        serde_json::from_str(&serde_json::to_string(fresh)).expect("fresh report renders as JSON");
    let committed_v = match serde_json::from_str(committed) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("committed artifact is not valid JSON: {e}")]),
    };
    let mut drifts = Vec::new();

    let mut want = Vec::new();
    schema_paths(&fresh_v, "", &mut want);
    let mut have = Vec::new();
    schema_paths(&committed_v, "", &mut have);
    want.sort();
    want.dedup();
    have.sort();
    have.dedup();
    for p in want.iter().filter(|p| !have.contains(p)) {
        drifts.push(format!("schema: committed file is missing key {p}"));
    }
    for p in have.iter().filter(|p| !want.contains(p)) {
        drifts.push(format!("schema: committed file has stale key {p}"));
    }

    for config in ["solo", "fleet", "storm"] {
        for counter in [
            "jobs_submitted",
            "jobs_completed",
            "jobs_rejected",
            "jobs_lost",
            "failovers",
            "artifacts",
            "certified",
            "search_invocations",
            "store.lookups",
            "store.local_hits",
            "store.remote_hits",
            "store.misses",
        ] {
            let path = format!("{config}.{counter}");
            let f = lookup(&fresh_v, &path).and_then(serde_json::Value::as_f64);
            let c = lookup(&committed_v, &path).and_then(serde_json::Value::as_f64);
            match (f, c) {
                (Some(f), Some(c)) if (f - c).abs() > 1e-9 * (1.0 + f.abs()) => {
                    drifts.push(format!("counter {path}: committed {c} != fresh {f}"));
                }
                (Some(f), None) => drifts.push(format!("counter {path}: missing (fresh has {f})")),
                _ => {}
            }
        }
    }

    if drifts.is_empty() {
        Ok(())
    } else {
        Err(drifts)
    }
}

/// Serializes any report to `path` as pretty JSON.
///
/// # Panics
///
/// Panics when the file cannot be written.
pub fn write_json<T: Serialize>(value: &T, path: &str) {
    let json = serde_json::to_string_pretty(value);
    std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
}

fn print_report(name: &str, r: &FleetReport) {
    println!(
        "{name:>6}: {} dev ({} alive)  {} done / {} rejected / {} lost  \
         {:>8.1} tok/s  p99 {:.4}s  store hit {:.3} (remote {:.3})  \
         failovers {} (p99 +{:.4}s)  hedges {}/{}",
        r.devices,
        r.devices_alive,
        r.jobs_completed,
        r.jobs_rejected,
        r.jobs_lost,
        r.throughput_tokens_per_sec,
        r.p99_latency_secs,
        r.store.hit_rate(),
        r.store.remote_hit_rate(),
        r.failovers,
        r.failover_p99_secs,
        r.hedge_wins,
        r.hedges,
    );
}

/// Entry point for the `fleet_bench` binary.
///
/// Flags: `--chaos` (write `FLEET_chaos.json` with the decision log),
/// `--check <path>` (exit non-zero if the committed artifact at `path`
/// has drifted from a fresh run — the CI gate mirroring
/// `serve_bench --check`), `--seed N`, `--devices N`, `--rounds N`,
/// `--iterations N`.
///
/// # Panics
///
/// Panics on malformed flags or when an acceptance assertion fails.
pub fn main() {
    let mut chaos = false;
    let mut check: Option<String> = None;
    let mut seed: u64 = FULL_SEED;
    let mut devices = FULL_DEVICES;
    let mut rounds = FULL_ROUNDS;
    let mut iterations = FULL_ITERATIONS;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |name: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a number"))
        };
        match a.as_str() {
            "--chaos" => chaos = true,
            "--check" => check = Some(args.next().expect("--check needs a path")),
            "--seed" => seed = num("--seed"),
            "--devices" => devices = num("--devices") as u32,
            "--rounds" => rounds = num("--rounds") as usize,
            "--iterations" => iterations = num("--iterations"),
            other => panic!("unknown flag {other}"),
        }
    }

    if let Some(path) = check {
        let committed =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        let fresh = run_bench(rounds, iterations, devices, seed);
        match check_drift(&fresh, &committed) {
            Ok(()) => println!("{path}: no drift against a fresh run"),
            Err(drifts) => {
                eprintln!("{path} has drifted from a fresh run:");
                for d in &drifts {
                    eprintln!("  - {d}");
                }
                eprintln!("regenerate with: cargo run --release --bin fleet_bench");
                std::process::exit(1);
            }
        }
        return;
    }

    if chaos {
        // Chaos runs default deeper than the bench trace so every
        // benchmark has a steady window to capture; an explicit
        // --iterations still overrides.
        let iters = if iterations == FULL_ITERATIONS {
            CHAOS_ITERATIONS
        } else {
            iterations
        };
        let trace = fleet_trace(rounds, iters);
        // The same storm host-launched: the launch-overhead baseline
        // and the byte-identity reference for the graph-dispatched run.
        let (host, _, host_verdicts) = run_fleet(storm_options(devices, seed), &trace);
        let (report, decisions, verdicts) = run_fleet(chaos_options(devices, seed), &trace);
        assert_eq!(host.jobs_lost, 0, "host-launched chaos run lost jobs");
        assert_eq!(report.jobs_lost, 0, "chaos run lost jobs");
        assert!(
            report.graph_replays > 0,
            "the chaos fleet replayed nothing: graph dispatch was not exercised"
        );
        assert!(
            report.failovers > 0,
            "the storm must catch an in-flight graph-dispatched job \
             (mid-replay failover unexercised)"
        );
        assert!(
            report.launch_path_cycles < host.launch_path_cycles,
            "graph dispatch must cut the storm's launch-path cycles ({} vs {})",
            report.launch_path_cycles,
            host.launch_path_cycles
        );
        // Dispatch mode may change when things finish, never what jobs
        // compute: every job completed under both modes with
        // byte-identical outputs.
        for (i, (h, g)) in host_verdicts.iter().zip(&verdicts).enumerate() {
            match (h, g) {
                (FleetVerdict::Completed(h), FleetVerdict::Completed(g)) => {
                    assert_eq!(
                        h.outputs, g.outputs,
                        "job {i}: graph-dispatched output diverged from host-launched"
                    );
                }
                _ => panic!("job {i}: completion pattern diverged across dispatch modes"),
            }
        }
        print_report("storm", &report);
        let artifact = FleetChaosArtifact {
            seed,
            devices,
            graph_dispatch: true,
            host_launch_path_cycles: host.launch_path_cycles,
            saved_launch_cycles: host.launch_path_cycles - report.launch_path_cycles,
            report,
            decisions,
        };
        println!(
            "graph dispatch under storm: launch path {} -> {} cycles ({} replays, {} failovers)",
            artifact.host_launch_path_cycles,
            artifact.report.launch_path_cycles,
            artifact.report.graph_replays,
            artifact.report.failovers,
        );
        write_json(&artifact, "FLEET_chaos.json");
        println!(
            "wrote FLEET_chaos.json ({} decisions)",
            artifact.decisions.len()
        );
        return;
    }

    let report = run_bench(rounds, iterations, devices, seed);
    print_report("solo", &report.solo);
    print_report("fleet", &report.fleet);
    print_report("storm", &report.storm);
    write_json(&report, "BENCH_fleet.json");
    println!("wrote BENCH_fleet.json");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cheap report for drift-gate tests: one tiny solo run stands in
    /// for all three configurations (the gate compares JSON trees; it
    /// does not care that the configurations coincide).
    fn tiny_report() -> FleetBenchReport {
        let trace = fleet_trace(1, 1);
        let (solo, _, _) = run_fleet(solo_options(), &trace);
        FleetBenchReport {
            rounds: 1,
            iterations: 1,
            devices: 1,
            storm_seed: 0,
            fleet: solo.clone(),
            storm: solo.clone(),
            solo,
        }
    }

    #[test]
    fn drift_check_accepts_a_faithful_artifact_and_catches_drift() {
        let report = tiny_report();
        let json = serde_json::to_string_pretty(&report);
        assert_eq!(check_drift(&report, &json), Ok(()));

        let renamed = json.replacen("\"search_invocations\"", "\"search_invocs\"", 1);
        let drifts = check_drift(&report, &renamed).unwrap_err();
        assert!(
            drifts.iter().any(|d| d.contains("schema")),
            "renamed key must read as schema drift: {drifts:?}"
        );

        let mut stale = report.clone();
        stale.fleet.jobs_completed += 1;
        let drifts = check_drift(&stale, &json).unwrap_err();
        assert!(
            drifts.iter().any(|d| d.contains("fleet.jobs_completed")),
            "stale counter must be flagged: {drifts:?}"
        );

        assert!(check_drift(&report, "{not json").is_err());
    }
}
