//! The multi-tenant serving benchmark behind `cargo run --bin serve_bench`.
//!
//! Serves the eight StreamIt benchmarks as eight tenants of one
//! [`swpipe::serve::EventEngine`] over a deterministic arrival trace:
//! one warm-up round that admits every tenant (and recuts the SM
//! partition as each joins), one round compiled at the settled slice
//! widths, then repeat rounds that should hit the compilation cache. A
//! mild fault plan keeps the retry-rate metric exercised.
//!
//! The event engine overlaps cache-miss compilations with other
//! tenants' execution on a bounded worker pool; per-job results stay
//! byte-identical to the eager [`swpipe::serve::Server`] (the
//! `serve_engine` differential suite proves it), and the report gains
//! the overlap observables: `compile_overlap_secs` per tenant and in
//! total, plus a queue-wait p99.
//!
//! Writes `BENCH_serve.json` — per-benchmark throughput, p99 latency,
//! cache hit rate, and compile overlap — for the CI artifact upload.

use gpusim::FaultPlan;
use swpipe::serve::{
    EventEngine, Job, QosClass, ResilienceOptions, ServeOptions, ServeReport, Verdict,
};

/// Rounds the full benchmark runs: two cold rounds (tenant admission
/// recuts the partition, then the settled widths compile once more) plus
/// four rounds that should mostly hit the compilation cache.
pub const FULL_ROUNDS: usize = 6;
/// Steady-state iterations per job in the full benchmark.
pub const FULL_ITERATIONS: u64 = 4;

/// Serves every benchmark as its own tenant for `rounds` round-robin
/// arrival rounds of `iterations`-iteration jobs, returning the report.
///
/// # Panics
///
/// Panics when a benchmark fails to compile or execute, or is rejected —
/// the trace is paced below saturation, so either is a runtime bug and
/// the bench must fail loudly.
#[must_use]
pub fn run_trace(rounds: usize, iterations: u64) -> ServeReport {
    let opts = ServeOptions {
        // A mild transient-fault environment (3% of launch attempts)
        // so retry-rate and fault-overhead metrics are non-trivial.
        fault_plan: Some(FaultPlan::new(0x5EB7E).with_launch_failures(30)),
        // The online controller runs live: retry-rate EWMAs drive
        // per-tenant checkpoint intervals and any policy switches show
        // up as distinct cache keys in the report.
        resilience: ResilienceOptions {
            enabled: true,
            ..ResilienceOptions::default()
        },
        ..ServeOptions::default()
    };
    let mut engine = EventEngine::new(opts).with_checkpoint_period(1.0);

    let suite = streambench::suite();
    let mut trace = Vec::new();
    let mut now = 0.0;
    for _round in 0..rounds {
        for (i, b) in suite.iter().enumerate() {
            let job = Job {
                tenant: b.name.to_string(),
                graph: b.spec.flatten().expect("benchmark flattens"),
                input: b.input,
                iterations,
                // A stable QoS per tenant (alternating across the
                // suite) exercises both fault policies while keeping
                // each tenant's repeat jobs content-identical — so
                // repeat rounds hit the compilation cache instead of
                // recompiling under a round-flipped policy every time.
                qos: if i % 2 == 0 {
                    QosClass::Batch
                } else {
                    QosClass::Interactive
                },
            };
            trace.push((job, now));
            now += 0.05;
        }
        now += 1.0;
    }
    let verdicts = engine.serve_trace(&trace).expect("benchmark trace serves");
    for (verdict, (job, _)) in verdicts.iter().zip(&trace) {
        match verdict {
            Verdict::Completed(r) => {
                assert!(!r.outputs.is_empty(), "{}: no output", job.tenant);
            }
            Verdict::Rejected { retry_after_secs } => {
                panic!("{}: rejected (retry in {retry_after_secs}s)", job.tenant);
            }
        }
    }
    engine.report()
}

/// Serializes a report to `path` as pretty JSON.
///
/// # Panics
///
/// Panics when the file cannot be written.
pub fn write_report(report: &ServeReport, path: &str) {
    let json = serde_json::to_string_pretty(report);
    std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
}

/// Entry point for the `serve_bench` binary.
pub fn main() {
    let report = run_trace(FULL_ROUNDS, FULL_ITERATIONS);
    for t in &report.tenants {
        println!(
            "{:>18}  slice [{:>2}+{:<2}]  {:>8.1} tok/s  p50 {:.4}s  p99 {:.4}s  \
             qwait-p99 {:.4}s  overlap {:.3}s  retries/launch {:.4}  hits {}/{}  \
             k={} switches={}",
            t.tenant,
            t.slice.base_sm,
            t.slice.num_sms,
            t.throughput_tokens_per_sec,
            t.p50_latency_secs,
            t.p99_latency_secs,
            t.queue_wait_p99_secs,
            t.compile_overlap_secs,
            t.retry_rate,
            t.compile_hits,
            t.compile_hits + t.compile_misses,
            t.checkpoint_interval,
            t.policy_switches,
        );
        if let Some(rec) = &t.recommendation {
            println!("{:>18}  note: {rec}", "");
        }
    }
    println!(
        "cache: {} hits / {} misses / {} evictions (hit rate {:.2})",
        report.cache.hits, report.cache.misses, report.cache.evictions, report.cache_hit_rate
    );
    println!(
        "compile overlap hidden behind execution: {:.3}s",
        report.compile_overlap_secs
    );
    println!("adaptive policy switches: {}", report.policy_switches);
    write_report(&report, "BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
