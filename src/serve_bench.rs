//! The multi-tenant serving benchmark behind `cargo run --bin serve_bench`.
//!
//! Serves the eight StreamIt benchmarks as eight tenants of one
//! [`swpipe::serve::EventEngine`] over a deterministic arrival trace:
//! one warm-up round that admits every tenant (and recuts the SM
//! partition as each joins), one round compiled at the settled slice
//! widths, then repeat rounds that should hit the compilation cache. A
//! mild fault plan keeps the retry-rate metric exercised.
//!
//! The event engine overlaps cache-miss compilations with other
//! tenants' execution on a bounded worker pool; per-job results stay
//! byte-identical to the eager [`swpipe::serve::Server`] (the
//! `serve_engine` differential suite proves it), and the report gains
//! the overlap observables: `compile_overlap_secs` per tenant and in
//! total, plus a queue-wait p99.
//!
//! Writes `BENCH_serve.json` — per-benchmark throughput, p99 latency,
//! cache hit rate, and compile overlap — for the CI artifact upload.

use gpusim::FaultPlan;
use serde::Serialize;
use swpipe::serve::{
    EventEngine, Job, QosClass, ResilienceOptions, ServeOptions, ServeReport, Verdict,
};

/// Rounds the full benchmark runs: two cold rounds (tenant admission
/// recuts the partition, then the settled widths compile once more) plus
/// four rounds that should mostly hit the compilation cache.
pub const FULL_ROUNDS: usize = 6;
/// Steady-state iterations per job in the full benchmark.
pub const FULL_ITERATIONS: u64 = 4;
/// Arrival rounds of the graph-dispatch differential (`--graph`).
pub const GRAPH_ROUNDS: usize = 2;
/// Steady-state iterations per job in the graph-dispatch differential.
/// Deliberately deeper than [`FULL_ITERATIONS`]: a modulo schedule only
/// has a capturable steady state once the pipeline has filled
/// (`launch rounds > max_stage`, where a coarsened schedule folds
/// several iterations into one round), so the differential runs long
/// enough that every benchmark's steady window dominates — at 48
/// iterations all eight benchmarks replay, including the deeply
/// coarsened DES.
pub const GRAPH_ITERATIONS: u64 = 48;

/// Serves every benchmark as its own tenant for `rounds` round-robin
/// arrival rounds of `iterations`-iteration jobs, returning the report.
///
/// # Panics
///
/// Panics when a benchmark fails to compile or execute, or is rejected —
/// the trace is paced below saturation, so either is a runtime bug and
/// the bench must fail loudly.
#[must_use]
pub fn run_trace(rounds: usize, iterations: u64) -> ServeReport {
    run_trace_outputs(rounds, iterations, false).0
}

/// [`run_trace`], returning every job's output stream alongside the
/// report, and optionally warming the compilation cache first
/// ([`EventEngine::warm`] over the whole suite at every slice width).
/// The outputs let `--warm` prove cache warming is semantics-neutral:
/// per-job output streams must be byte-identical cold vs. warm.
///
/// # Panics
///
/// See [`run_trace`].
#[must_use]
pub fn run_trace_outputs(
    rounds: usize,
    iterations: u64,
    warm: bool,
) -> (ServeReport, Vec<Vec<streamir::ir::Scalar>>) {
    run_trace_configured(rounds, iterations, warm, false)
}

/// [`run_trace_outputs`] with the dispatch mode explicit: when
/// `graph_dispatch` is set, every tenant's steady state runs as
/// captured-graph replays instead of per-round host launches. The
/// trace, fault plan, and controller configuration are otherwise
/// identical, so a host-launched and a graph-dispatched run of the
/// same `(rounds, iterations)` are directly comparable — and must be
/// byte-identical in every job's output stream.
///
/// # Panics
///
/// See [`run_trace`].
#[must_use]
pub fn run_trace_configured(
    rounds: usize,
    iterations: u64,
    warm: bool,
    graph_dispatch: bool,
) -> (ServeReport, Vec<Vec<streamir::ir::Scalar>>) {
    let opts = ServeOptions {
        graph_dispatch,
        // A mild transient-fault environment (3% of launch attempts)
        // so retry-rate and fault-overhead metrics are non-trivial.
        fault_plan: Some(FaultPlan::new(0x5EB7E).with_launch_failures(30)),
        // The online controller runs live: retry-rate EWMAs drive
        // per-tenant checkpoint intervals and any policy switches show
        // up as distinct cache keys in the report.
        resilience: ResilienceOptions {
            enabled: true,
            ..ResilienceOptions::default()
        },
        // Large enough to hold the full `--warm` sweep (8 graphs × 16
        // widths × 2 policies = 256 points): at the default 32-entry
        // bound the sweep evicts its own earliest entries and the
        // serving path's reservations displace the rest before any
        // tenant dispatches — a warm start indistinguishable from cold.
        // The cold trace touches only 14 distinct keys, so the wider
        // bound leaves the committed cold baseline byte-identical.
        cache: swpipe::serve::CacheOptions {
            capacity: 512,
            ..swpipe::serve::CacheOptions::default()
        },
        ..ServeOptions::default()
    };
    let mut engine = EventEngine::new(opts).with_checkpoint_period(1.0);

    let suite = streambench::suite();
    if warm {
        let graphs: Vec<_> = suite
            .iter()
            .map(|b| b.spec.flatten().expect("benchmark flattens"))
            .collect();
        // `max_tenants = 1` warms *every* width 1..=num_sms, covering
        // the wide slices early arrivals compile at before the
        // partition settles — not just the steady-state widths.
        let report = engine.warm(&graphs, 1);
        assert_eq!(report.failed, 0, "warming must compile every point");
        assert_eq!(
            report.evictions, 0,
            "the warm sweep must fit the cache bound or the warm start is fictional"
        );
    }
    let mut trace = Vec::new();
    let mut now = 0.0;
    for _round in 0..rounds {
        for (i, b) in suite.iter().enumerate() {
            let job = Job {
                tenant: b.name.to_string(),
                graph: b.spec.flatten().expect("benchmark flattens"),
                input: b.input,
                iterations,
                // A stable QoS per tenant (alternating across the
                // suite) exercises both fault policies while keeping
                // each tenant's repeat jobs content-identical — so
                // repeat rounds hit the compilation cache instead of
                // recompiling under a round-flipped policy every time.
                qos: if i % 2 == 0 {
                    QosClass::Batch
                } else {
                    QosClass::Interactive
                },
            };
            trace.push((job, now));
            now += 0.05;
        }
        now += 1.0;
    }
    let verdicts = engine.serve_trace(&trace).expect("benchmark trace serves");
    let mut outputs = Vec::with_capacity(verdicts.len());
    for (verdict, (job, _)) in verdicts.iter().zip(&trace) {
        match verdict {
            Verdict::Completed(r) => {
                assert!(!r.outputs.is_empty(), "{}: no output", job.tenant);
                outputs.push(r.outputs.clone());
            }
            Verdict::Rejected { retry_after_secs } => {
                panic!("{}: rejected (retry in {retry_after_secs}s)", job.tenant);
            }
        }
    }
    let report = engine.report();
    assert!(report.artifacts > 0, "trace dispatched no artifacts");
    assert_eq!(
        report.certified, report.artifacts,
        "every dispatched artifact must carry a verified isolation certificate"
    );
    (report, outputs)
}

/// Serializes a report to `path` as pretty JSON.
///
/// # Panics
///
/// Panics when the file cannot be written.
pub fn write_report<T: Serialize>(report: &T, path: &str) {
    let json = serde_json::to_string_pretty(report);
    std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
}

/// Collects every object key path in a JSON tree (array elements
/// contribute under a `[]` segment), for schema comparison. Shared
/// with `fleet_bench`'s drift gate.
pub(crate) fn schema_paths(v: &serde_json::Value, prefix: &str, out: &mut Vec<String>) {
    match v {
        serde_json::Value::Object(fields) => {
            for (k, fv) in fields {
                let p = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                out.push(p.clone());
                schema_paths(fv, &p, out);
            }
        }
        serde_json::Value::Array(items) => {
            if let Some(first) = items.first() {
                schema_paths(first, &format!("{prefix}[]"), out);
            }
        }
        _ => {}
    }
}

pub(crate) fn lookup<'v>(v: &'v serde_json::Value, path: &str) -> Option<&'v serde_json::Value> {
    path.split('.').try_fold(v, |v, seg| v.get(seg))
}

/// Compares the committed benchmark artifact against a fresh run.
/// Drift is either **schema drift** (the committed file's recursive
/// key structure differs from what the current code emits) or
/// **headline-counter drift** (cache hits/misses/evictions, hit rate,
/// policy switches, rebalances, tenant count, or total accepted /
/// rejected jobs differ — the trace is deterministic in virtual time,
/// so these must reproduce exactly).
///
/// # Errors
///
/// Returns every drift found, one human-readable line each.
pub fn check_drift(fresh: &ServeReport, committed: &str) -> Result<(), Vec<String>> {
    let fresh_v =
        serde_json::from_str(&serde_json::to_string(fresh)).expect("fresh report renders as JSON");
    let committed_v = match serde_json::from_str(committed) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("committed artifact is not valid JSON: {e}")]),
    };
    let mut drifts = Vec::new();

    let mut want = Vec::new();
    schema_paths(&fresh_v, "", &mut want);
    let mut have = Vec::new();
    schema_paths(&committed_v, "", &mut have);
    want.sort();
    want.dedup();
    have.sort();
    have.dedup();
    for p in want.iter().filter(|p| !have.contains(p)) {
        drifts.push(format!("schema: committed file is missing key {p}"));
    }
    for p in have.iter().filter(|p| !want.contains(p)) {
        drifts.push(format!("schema: committed file has stale key {p}"));
    }

    for path in [
        "cache.hits",
        "cache.misses",
        "cache.evictions",
        "cache_hit_rate",
        "policy_switches",
        "rebalances",
    ] {
        let f = lookup(&fresh_v, path).and_then(serde_json::Value::as_f64);
        let c = lookup(&committed_v, path).and_then(serde_json::Value::as_f64);
        match (f, c) {
            (Some(f), Some(c)) if (f - c).abs() > 1e-9 * (1.0 + f.abs()) => {
                drifts.push(format!("counter {path}: committed {c} != fresh {f}"));
            }
            (Some(f), None) => drifts.push(format!("counter {path}: missing (fresh has {f})")),
            _ => {}
        }
    }

    let jobs = |v: &serde_json::Value| -> Option<(usize, u64, u64)> {
        let tenants = v.get("tenants")?.as_array()?;
        let mut acc = (tenants.len(), 0, 0);
        for t in tenants {
            acc.1 += t.get("jobs_accepted")?.as_u64()?;
            acc.2 += t.get("jobs_rejected")?.as_u64()?;
        }
        Some(acc)
    };
    match (jobs(&fresh_v), jobs(&committed_v)) {
        (Some(f), Some(c)) if f != c => drifts.push(format!(
            "tenants (count, accepted, rejected): committed {c:?} != fresh {f:?}"
        )),
        (Some(f), None) => drifts.push(format!("tenant rows unreadable (fresh has {f:?})")),
        _ => {}
    }

    if drifts.is_empty() {
        Ok(())
    } else {
        Err(drifts)
    }
}

/// Runs the warm-started differential: the full trace cold, then the
/// same trace on a cache pre-warmed across the whole suite
/// ([`EventEngine::warm`]). Warming must be semantics-neutral (per-job
/// outputs byte-identical) and must pay off (strictly higher hit rate
/// than both the fresh cold run and the committed `baseline` artifact).
/// Returns the warm report.
///
/// # Panics
///
/// Panics when any of those acceptance properties fails.
#[must_use]
pub fn run_warm_differential(rounds: usize, iterations: u64, baseline: &str) -> ServeReport {
    let (cold, cold_outputs) = run_trace_outputs(rounds, iterations, false);
    let (warm, warm_outputs) = run_trace_outputs(rounds, iterations, true);
    assert_eq!(
        cold_outputs, warm_outputs,
        "cache warming must not change any job's output stream"
    );
    assert!(
        warm.cache_hit_rate > cold.cache_hit_rate,
        "warm hit rate {:.3} must beat the cold run's {:.3}",
        warm.cache_hit_rate,
        cold.cache_hit_rate
    );
    let committed: serde_json::Value =
        serde_json::from_str(baseline).expect("committed baseline parses as JSON");
    let committed_rate = lookup(&committed, "cache_hit_rate")
        .and_then(serde_json::Value::as_f64)
        .expect("committed baseline has cache_hit_rate");
    assert!(
        warm.cache_hit_rate > committed_rate,
        "warm hit rate {:.3} must beat the committed baseline's {committed_rate:.3}",
        warm.cache_hit_rate
    );
    warm
}

/// One benchmark's row of the graph-dispatch differential: the same
/// trace's launch-path spend under host launches vs. captured-graph
/// replays.
#[derive(Debug, Clone, Serialize)]
pub struct GraphTenantRow {
    /// Tenant (benchmark) name.
    pub tenant: String,
    /// Launch-path cycles with every round host-launched.
    pub host_launch_cycles: u64,
    /// Launch-path cycles with steady-state rounds replayed from the
    /// captured graph (prologue/epilogue still host-launched).
    pub graph_launch_cycles: u64,
    /// One-time capture cycles the replays must amortize.
    pub graph_capture_cycles: u64,
    /// Steady-state rounds dispatched as replays.
    pub graph_replays: u64,
    /// `host_launch_cycles - graph_launch_cycles` — the launch-tax
    /// savings, before the capture cost.
    pub saved_launch_cycles: u64,
    /// Savings net of the capture cost; negative when a trace is too
    /// short to amortize its captures.
    pub net_saved_cycles: i64,
}

/// The graph-dispatch differential artifact (`BENCH_serve_graph.json`).
#[derive(Debug, Clone, Serialize)]
pub struct GraphBenchReport {
    /// Arrival rounds served.
    pub rounds: u64,
    /// Iterations per job.
    pub iterations: u64,
    /// Total launch-path cycles under host launches.
    pub host_launch_cycles: u64,
    /// Total launch-path cycles under graph dispatch.
    pub graph_launch_cycles: u64,
    /// Total capture cycles paid.
    pub graph_capture_cycles: u64,
    /// Total steady-state replays.
    pub graph_replays: u64,
    /// Total launch-tax savings (host − graph), before capture costs.
    pub saved_launch_cycles: u64,
    /// Total savings net of capture costs.
    pub net_saved_cycles: i64,
    /// Fraction of the host run's launch-path spend eliminated.
    pub saved_share: f64,
    /// Per-benchmark rows, in tenant-name order.
    pub tenants: Vec<GraphTenantRow>,
}

/// Runs the graph-dispatch differential: the same trace host-launched
/// and graph-dispatched, asserting that graph dispatch is
/// semantics-neutral (every job's output stream byte-identical) and
/// that it pays (launch-path cycles never higher for any tenant,
/// strictly and measurably lower for the deep pipelines DES and
/// FMRadio, and lower in total even after the capture costs).
///
/// # Panics
///
/// Panics when any of those acceptance properties fails.
#[must_use]
pub fn run_graph_differential(rounds: usize, iterations: u64) -> GraphBenchReport {
    let (host, host_outputs) = run_trace_configured(rounds, iterations, false, false);
    let (graph, graph_outputs) = run_trace_configured(rounds, iterations, false, true);
    assert_eq!(
        host_outputs, graph_outputs,
        "graph dispatch must not change any job's output stream"
    );

    let mut tenants = Vec::with_capacity(host.tenants.len());
    for (h, g) in host.tenants.iter().zip(&graph.tenants) {
        assert_eq!(h.tenant, g.tenant, "tenant rows must align");
        assert!(
            g.launch_path_cycles <= h.launch_path_cycles,
            "{}: graph dispatch raised launch-path cycles ({} > {})",
            g.tenant,
            g.launch_path_cycles,
            h.launch_path_cycles
        );
        let saved = h.launch_path_cycles - g.launch_path_cycles;
        tenants.push(GraphTenantRow {
            tenant: g.tenant.clone(),
            host_launch_cycles: h.launch_path_cycles,
            graph_launch_cycles: g.launch_path_cycles,
            graph_capture_cycles: g.graph_capture_cycles,
            graph_replays: g.graph_replays,
            saved_launch_cycles: saved,
            net_saved_cycles: saved as i64 - g.graph_capture_cycles as i64,
        });
    }
    // The acceptance benchmarks: deep pipelines whose steady state
    // dominates the trace must show a measurable launch-tax cut, not a
    // rounding-level one.
    for name in ["DES", "FMRadio"] {
        let row = tenants
            .iter()
            .find(|t| t.tenant == name)
            .unwrap_or_else(|| panic!("{name} missing from the differential"));
        assert!(
            row.graph_replays > 0,
            "{name}: no steady-state rounds were replayed"
        );
        assert!(
            row.graph_launch_cycles < row.host_launch_cycles,
            "{name}: graph dispatch must strictly cut launch-path cycles \
             ({} vs {})",
            row.graph_launch_cycles,
            row.host_launch_cycles
        );
        assert!(
            row.net_saved_cycles > 0,
            "{name}: replay savings must amortize the capture cost \
             (net {} cycles)",
            row.net_saved_cycles
        );
    }
    let saved = host.launch_path_cycles - graph.launch_path_cycles;
    let capture: u64 = tenants.iter().map(|t| t.graph_capture_cycles).sum();
    let net = saved as i64 - capture as i64;
    assert!(
        net > 0,
        "graph dispatch must save launch cycles in total, net of captures (net {net})"
    );
    GraphBenchReport {
        rounds: rounds as u64,
        iterations,
        host_launch_cycles: host.launch_path_cycles,
        graph_launch_cycles: graph.launch_path_cycles,
        graph_capture_cycles: capture,
        graph_replays: graph.graph_replays,
        saved_launch_cycles: saved,
        net_saved_cycles: net,
        saved_share: if host.launch_path_cycles == 0 {
            0.0
        } else {
            saved as f64 / host.launch_path_cycles as f64
        },
        tenants,
    }
}

/// Compares the committed `BENCH_serve_graph.json` against a fresh
/// differential run — the graph-dispatch counterpart of
/// [`check_drift`]. The trace is deterministic in virtual time and the
/// launch-path accounting is exact, so both the schema and every
/// cycle counter must reproduce.
///
/// # Errors
///
/// Returns every drift found, one human-readable line each.
pub fn check_graph_drift(fresh: &GraphBenchReport, committed: &str) -> Result<(), Vec<String>> {
    let fresh_v =
        serde_json::from_str(&serde_json::to_string(fresh)).expect("fresh report renders as JSON");
    let committed_v = match serde_json::from_str(committed) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("committed artifact is not valid JSON: {e}")]),
    };
    let mut drifts = Vec::new();

    let mut want = Vec::new();
    schema_paths(&fresh_v, "", &mut want);
    let mut have = Vec::new();
    schema_paths(&committed_v, "", &mut have);
    want.sort();
    want.dedup();
    have.sort();
    have.dedup();
    for p in want.iter().filter(|p| !have.contains(p)) {
        drifts.push(format!("schema: committed file is missing key {p}"));
    }
    for p in have.iter().filter(|p| !want.contains(p)) {
        drifts.push(format!("schema: committed file has stale key {p}"));
    }

    for path in [
        "host_launch_cycles",
        "graph_launch_cycles",
        "graph_capture_cycles",
        "graph_replays",
        "saved_launch_cycles",
        "net_saved_cycles",
    ] {
        let f = lookup(&fresh_v, path).and_then(serde_json::Value::as_f64);
        let c = lookup(&committed_v, path).and_then(serde_json::Value::as_f64);
        match (f, c) {
            (Some(f), Some(c)) if (f - c).abs() > 1e-9 * (1.0 + f.abs()) => {
                drifts.push(format!("counter {path}: committed {c} != fresh {f}"));
            }
            (Some(f), None) => drifts.push(format!("counter {path}: missing (fresh has {f})")),
            _ => {}
        }
    }

    if drifts.is_empty() {
        Ok(())
    } else {
        Err(drifts)
    }
}

/// Entry point for the `serve_bench` binary.
///
/// With no arguments, runs the full benchmark and writes
/// `BENCH_serve.json`. With `--check <path>`, runs the same benchmark
/// and exits non-zero if the committed artifact at `path` has drifted
/// from the fresh run (see [`check_drift`]) — the CI gate that keeps
/// the committed numbers honest. With `--warm [baseline]`, runs the
/// warm-started differential against the committed baseline (default
/// `BENCH_serve.json`; see [`run_warm_differential`]) and writes
/// `BENCH_serve_warm.json`. With `--graph`, runs the graph-dispatch
/// differential ([`run_graph_differential`]) and writes
/// `BENCH_serve_graph.json`; `--graph --check <path>` drift-gates the
/// committed artifact instead.
pub fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--graph") {
        let fresh = run_graph_differential(GRAPH_ROUNDS, GRAPH_ITERATIONS);
        if args.get(1).map(String::as_str) == Some("--check") {
            let path = args.get(2).expect("--graph --check needs a path");
            let committed =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
            match check_graph_drift(&fresh, &committed) {
                Ok(()) => println!("{path}: no drift against a fresh run"),
                Err(drifts) => {
                    eprintln!("{path} has drifted from a fresh run:");
                    for d in &drifts {
                        eprintln!("  - {d}");
                    }
                    eprintln!("regenerate with: cargo run --release --bin serve_bench -- --graph");
                    std::process::exit(1);
                }
            }
            return;
        }
        assert!(args.len() == 1, "unknown arguments {args:?}");
        for t in &fresh.tenants {
            println!(
                "{:>18}  host {:>12} cy  graph {:>12} cy  capture {:>9} cy  \
                 {:>4} replays  net saved {:>12} cy",
                t.tenant,
                t.host_launch_cycles,
                t.graph_launch_cycles,
                t.graph_capture_cycles,
                t.graph_replays,
                t.net_saved_cycles,
            );
        }
        println!(
            "launch path: {} -> {} cycles ({:.1}% cut, {} net after {} capture cycles)",
            fresh.host_launch_cycles,
            fresh.graph_launch_cycles,
            fresh.saved_share * 100.0,
            fresh.net_saved_cycles,
            fresh.graph_capture_cycles,
        );
        write_report(&fresh, "BENCH_serve_graph.json");
        println!("wrote BENCH_serve_graph.json");
        return;
    }
    if args.first().map(String::as_str) == Some("--warm") {
        let path = args.get(1).map_or("BENCH_serve.json", String::as_str);
        let committed =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        let warm = run_warm_differential(FULL_ROUNDS, FULL_ITERATIONS, &committed);
        println!(
            "warm-started: cache {} hits / {} misses (hit rate {:.3})",
            warm.cache.hits, warm.cache.misses, warm.cache_hit_rate
        );
        write_report(&warm, "BENCH_serve_warm.json");
        println!("wrote BENCH_serve_warm.json");
        return;
    }
    if args.first().map(String::as_str) == Some("--check") {
        let path = args.get(1).expect("--check needs a path");
        let committed =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        let fresh = run_trace(FULL_ROUNDS, FULL_ITERATIONS);
        match check_drift(&fresh, &committed) {
            Ok(()) => println!("{path}: no drift against a fresh run"),
            Err(drifts) => {
                eprintln!("{path} has drifted from a fresh run:");
                for d in &drifts {
                    eprintln!("  - {d}");
                }
                eprintln!("regenerate with: cargo run --release --bin serve_bench");
                std::process::exit(1);
            }
        }
        return;
    }
    assert!(args.is_empty(), "unknown arguments {args:?}");

    let report = run_trace(FULL_ROUNDS, FULL_ITERATIONS);
    for t in &report.tenants {
        println!(
            "{:>18}  slice [{:>2}+{:<2}]  {:>8.1} tok/s  p50 {:.4}s  p99 {:.4}s  \
             qwait-p99 {:.4}s  overlap {:.3}s  retries/launch {:.4}  hits {}/{}  \
             k={} switches={}",
            t.tenant,
            t.slice.base_sm,
            t.slice.num_sms,
            t.throughput_tokens_per_sec,
            t.p50_latency_secs,
            t.p99_latency_secs,
            t.queue_wait_p99_secs,
            t.compile_overlap_secs,
            t.retry_rate,
            t.compile_hits,
            t.compile_hits + t.compile_misses,
            t.checkpoint_interval,
            t.policy_switches,
        );
        if let Some(rec) = &t.recommendation {
            println!("{:>18}  note: {rec}", "");
        }
    }
    println!(
        "cache: {} hits / {} misses / {} evictions (hit rate {:.2})",
        report.cache.hits, report.cache.misses, report.cache.evictions, report.cache_hit_rate
    );
    println!(
        "compile overlap hidden behind execution: {:.3}s",
        report.compile_overlap_secs
    );
    println!("adaptive policy switches: {}", report.policy_switches);
    write_report(&report, "BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_check_accepts_a_faithful_artifact() {
        let report = run_trace(2, 1);
        let json = serde_json::to_string_pretty(&report);
        assert_eq!(check_drift(&report, &json), Ok(()));
    }

    #[test]
    fn drift_check_catches_schema_and_counter_drift() {
        let report = run_trace(2, 1);
        let json = serde_json::to_string_pretty(&report);

        let renamed = json.replacen("\"hits\"", "\"hits_old\"", 1);
        let drifts = check_drift(&report, &renamed).unwrap_err();
        assert!(
            drifts.iter().any(|d| d.contains("schema")),
            "renamed key must read as schema drift: {drifts:?}"
        );

        let mut stale = report.clone();
        stale.cache.hits += 1;
        let drifts = check_drift(&stale, &json).unwrap_err();
        assert!(
            drifts.iter().any(|d| d.contains("cache.hits")),
            "stale counter must be flagged: {drifts:?}"
        );
    }

    #[test]
    fn drift_check_rejects_garbage() {
        let report = run_trace(2, 1);
        assert!(check_drift(&report, "{not json").is_err());
    }

    /// The graph drift gate needs no serving run: it compares JSON
    /// trees, so a hand-built report exercises accept, schema drift,
    /// and counter drift cheaply.
    fn tiny_graph_report() -> GraphBenchReport {
        GraphBenchReport {
            rounds: 1,
            iterations: 2,
            host_launch_cycles: 320_000,
            graph_launch_cycles: 40_000,
            graph_capture_cycles: 30_000,
            graph_replays: 16,
            saved_launch_cycles: 280_000,
            net_saved_cycles: 250_000,
            saved_share: 0.875,
            tenants: vec![GraphTenantRow {
                tenant: "DES".to_string(),
                host_launch_cycles: 320_000,
                graph_launch_cycles: 40_000,
                graph_capture_cycles: 30_000,
                graph_replays: 16,
                saved_launch_cycles: 280_000,
                net_saved_cycles: 250_000,
            }],
        }
    }

    #[test]
    fn graph_drift_check_accepts_faithful_and_catches_drift() {
        let report = tiny_graph_report();
        let json = serde_json::to_string_pretty(&report);
        assert_eq!(check_graph_drift(&report, &json), Ok(()));

        let renamed = json.replacen("\"graph_replays\"", "\"replays\"", 1);
        let drifts = check_graph_drift(&report, &renamed).unwrap_err();
        assert!(
            drifts.iter().any(|d| d.contains("schema")),
            "renamed key must read as schema drift: {drifts:?}"
        );

        let mut stale = report.clone();
        stale.graph_launch_cycles += 1;
        let drifts = check_graph_drift(&stale, &json).unwrap_err();
        assert!(
            drifts.iter().any(|d| d.contains("graph_launch_cycles")),
            "stale counter must be flagged: {drifts:?}"
        );

        assert!(check_graph_drift(&report, "{not json").is_err());
    }
}
