//! Facade crate re-exporting the whole stream-gpu workspace.
//!
//! See the individual crates for details:
//! - [`streamir`]: stream-graph IR, SDF solving, CPU execution
//! - [`gpusim`]: the simulated GeForce-8800-class GPU
//! - [`ilp`]: the MILP solver
//! - [`swpipe`]: the software-pipelining compiler (the paper's contribution)
//! - [`streambench`]: the eight StreamIt benchmarks

pub use gpusim;
pub use ilp;
pub use numeric;
pub use streambench;
pub use streamir;
pub use swpipe;

pub mod chaos_soak;
pub mod fleet_bench;
pub mod learn_gen;
pub mod learn_train;
pub mod serve_bench;
