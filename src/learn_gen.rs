//! The cost-model dataset generator behind `cargo run --bin learn_gen`.
//!
//! Enumerates candidate `(assignment, II)` schedule points — the same
//! beam-strategy assignments and II grid the online search ranks — for
//! the eight StreamIt benchmarks plus seeded random stream graphs,
//! labels every point with simulated steady-state cycles/iteration, and
//! writes a versioned [`swpipe::learn::Dataset`] JSON artifact.
//!
//! Generation is deterministic end to end (fixed seeds, fixed
//! enumeration order, simulator labels), so the CI `learn` job can
//! regenerate the small dataset from scratch and demand byte-identical
//! output.

use swpipe::learn::dataset::{generate, random_sources, GenOptions};
use swpipe::learn::{Dataset, Source};

/// Seed of the random stream graphs in both dataset flavors.
pub const SEED: u64 = 0x5EED_DA7A;
/// Random graphs in the full dataset (the suite rides along).
pub const FULL_RANDOM: usize = 6;
/// Random graphs in the small (CI) dataset.
pub const SMALL_RANDOM: usize = 2;
/// Default output path of the full dataset.
pub const FULL_PATH: &str = "datasets/learn_full.json";
/// Output path of the small (CI, committed) dataset.
pub const SMALL_PATH: &str = "datasets/learn_small.json";

/// The eight StreamIt benchmarks as labeling sources.
///
/// # Panics
///
/// Panics when a benchmark spec fails to flatten (a suite bug).
#[must_use]
pub fn suite_sources() -> Vec<Source> {
    streambench::suite()
        .iter()
        .map(|b| Source {
            name: b.name.to_string(),
            graph: b.spec.flatten().expect("benchmark flattens"),
            input: b.input,
        })
        .collect()
}

/// Generates the dataset. `small` restricts the sources (two random
/// graphs plus the first three benchmarks) and the candidate grid so
/// the CI job finishes in seconds; the full flavor covers the whole
/// suite plus [`FULL_RANDOM`] random graphs on the default grid.
///
/// # Panics
///
/// Panics when generation fails (profile or schedule construction on a
/// fixed, known-good source set — a generator bug).
#[must_use]
pub fn gen(small: bool) -> Dataset {
    let (sources, opts) = if small {
        let mut sources = random_sources(SMALL_RANDOM, SEED);
        sources.extend(suite_sources().into_iter().take(3));
        let opts = GenOptions {
            sms_grid: vec![2, 4],
            ii_multipliers: vec![1.0, 1.15],
            ..GenOptions::default()
        };
        (sources, opts)
    } else {
        let mut sources = suite_sources();
        sources.extend(random_sources(FULL_RANDOM, SEED));
        (sources, GenOptions::default())
    };
    generate(&sources, &opts).expect("dataset generation on known-good sources")
}

/// Entry point for the `learn_gen` binary.
///
/// Flags: `--small` (CI flavor: fewer sources, coarser grid, writes
/// `datasets/learn_small.json`), `--out <path>` (override the output
/// path).
///
/// # Panics
///
/// Panics on malformed flags or an unwritable output path.
pub fn main() {
    let mut small = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--small" => small = true,
            "--out" => out = Some(args.next().expect("--out needs a path")),
            other => panic!("unknown flag {other}"),
        }
    }
    let path = out.unwrap_or_else(|| {
        if small {
            SMALL_PATH.to_string()
        } else {
            FULL_PATH.to_string()
        }
    });
    let dataset = gen(small);
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("mkdir {}: {e}", dir.display()));
        }
    }
    std::fs::write(&path, dataset.to_json()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!(
        "wrote {path}: {} points over {} features",
        dataset.points.len(),
        dataset.feature_names.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_dataset_is_deterministic_and_trainable() {
        let a = gen(true);
        let b = gen(true);
        assert_eq!(a.to_json(), b.to_json(), "small dataset must be replayable");
        assert!(a.points.len() >= 10, "too few points: {}", a.points.len());
        let (xs, ys) = a.xy();
        let model =
            swpipe::learn::CostModel::train(swpipe::learn::features::FEATURE_NAMES, &xs, &ys, 1e-3)
                .expect("small dataset trains");
        assert!(model.mean_abs_error(&xs, &ys).is_finite());
    }
}
