//! Thin binary wrapper; the generator lives in the library so the
//! tests can drive the exact same dataset build.

fn main() {
    stream_gpu::learn_gen::main();
}
