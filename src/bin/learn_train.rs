//! Thin binary wrapper; the trainer lives in the library so the tests
//! can drive the exact same fit.

fn main() {
    stream_gpu::learn_train::main();
}
