//! Thin binary wrapper; the benchmark lives in the library so the
//! integration tests can drive the exact same trace.

fn main() {
    stream_gpu::fleet_bench::main();
}
