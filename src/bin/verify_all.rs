//! `verify-all`: sweep the whole benchmark suite through the static
//! verifier and cross-check its coalescing prediction against the
//! simulator's dynamic memory counters.
//!
//! ```text
//! verify-all [-v] [--dot <dir>] [--isolation] [--json] [iterations]
//! ```
//!
//! For every benchmark × execution scheme the tool:
//!
//! 1. compiles the benchmark and runs the full verifier (modulo-schedule
//!    hazards, buffer-bounds liveness, coalescing classification);
//! 2. executes the same compilation on the simulator and asserts the
//!    predicted memory counters equal the measured ones **exactly** —
//!    any divergence between the static model and the simulator fails
//!    the sweep;
//! 3. fails on any error-severity (`V0101`/`V0201`/`V0301`-class)
//!    diagnostic.
//!
//! `-v` prints every diagnostic (by default only failures are rendered);
//! `--dot <dir>` writes an annotated Graphviz file per benchmark with
//! flagged filters and channels colored by severity;
//! `--isolation` additionally runs the tenant-isolation prover
//! ([`swpipe::verify::isolate`]) and fails the sweep unless every
//! benchmark × scheme earns a certificate;
//! `--json` dumps every diagnostic (and, with `--isolation`, every
//! certificate) as one JSON document on stdout after the sweep.

use serde_json::Value;
use swpipe::exec::{self, CompileOptions, Scheme};
use swpipe::report;
use swpipe::verify::{self, StaticCounters};

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

fn num(n: u64) -> Value {
    Value::Num(n as f64)
}

fn opt_str(s: &Option<String>) -> Value {
    s.as_ref().map_or(Value::Null, |v| Value::Str(v.clone()))
}

fn opt_num(n: Option<u32>) -> Value {
    n.map_or(Value::Null, |v| num(u64::from(v)))
}

fn main() {
    let mut verbose = false;
    let mut dot_dir: Option<String> = None;
    let mut isolation = false;
    let mut json = false;
    let mut iterations = 4u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-v" | "--verbose" => verbose = true,
            "--isolation" => isolation = true,
            "--json" => json = true,
            "--dot" => match args.next() {
                Some(d) => dot_dir = Some(d),
                None => return usage(),
            },
            other => match other.parse() {
                Ok(n) if n > 0 => iterations = n,
                _ => return usage(),
            },
        }
    }

    let schemes = [
        ("swp", Scheme::Swp { coarsening: 1 }),
        ("swpnc", Scheme::SwpNc { coarsening: 1 }),
        ("swp-raw", Scheme::SwpRaw { coarsening: 1 }),
        ("serial", Scheme::Serial { batch: 1 }),
    ];
    let mut failures = 0u32;
    let mut json_rows: Vec<Value> = Vec::new();
    for b in streambench::suite() {
        let graph = match b.spec.flatten() {
            Ok(g) => g,
            Err(e) => {
                println!("{:<12} FLATTEN FAILED: {e}", b.name);
                failures += 1;
                continue;
            }
        };
        let c = match exec::compile(&graph, &CompileOptions::small_test()) {
            Ok(c) => c,
            Err(e) => {
                println!("{:<12} COMPILE FAILED: {e}", b.name);
                failures += 1;
                continue;
            }
        };
        let mut bench_diags = Vec::new();
        for (label, scheme) in schemes {
            match check(&c, scheme, iterations, &b) {
                Ok((v, verdict)) => {
                    println!("{:<12} {label:<8} {verdict}", b.name);
                    if verbose || !v.passes() {
                        let text = report::render_diagnostics(&v.diagnostics);
                        for line in text.lines() {
                            println!("    {line}");
                        }
                    }
                    if !v.passes() || verdict.starts_with("FAIL") {
                        failures += 1;
                    }
                    let mut row = vec![
                        ("benchmark", Value::Str(b.name.into())),
                        ("scheme", Value::Str(label.into())),
                        ("verdict", Value::Str(verdict.clone())),
                        ("diagnostics", diagnostics_json(&v.diagnostics)),
                    ];
                    if isolation {
                        let (cert, iso_diags, iso_verdict) = prove_isolation(&c, scheme);
                        println!("{:<12} {label:<8} {iso_verdict}", b.name);
                        if verbose || cert.is_none() {
                            let text = report::render_diagnostics(&iso_diags);
                            for line in text.lines() {
                                println!("    {line}");
                            }
                        }
                        if cert.is_none() {
                            failures += 1;
                        }
                        row.push((
                            "isolation",
                            obj(vec![
                                ("certificate", certificate_json(cert.as_ref())),
                                ("diagnostics", diagnostics_json(&iso_diags)),
                            ]),
                        ));
                        bench_diags.extend(iso_diags);
                    }
                    json_rows.push(obj(row));
                    bench_diags.extend(v.diagnostics);
                }
                Err(e) => {
                    println!("{:<12} {label:<8} FAIL ({e})", b.name);
                    failures += 1;
                    json_rows.push(obj(vec![
                        ("benchmark", Value::Str(b.name.into())),
                        ("scheme", Value::Str(label.into())),
                        ("verdict", Value::Str(format!("FAIL ({e})"))),
                        ("diagnostics", Value::Array(Vec::new())),
                    ]));
                }
            }
        }
        if let Some(dir) = &dot_dir {
            let ann = report::dot_annotations(&bench_diags);
            let dot = c.graph.to_dot_annotated(b.name, &ann);
            let path = format!("{dir}/{}.dot", b.name);
            if let Err(e) = std::fs::write(&path, dot) {
                eprintln!("error: cannot write {path}: {e}");
                failures += 1;
            }
        }
    }
    if json {
        let doc = obj(vec![
            ("iterations", num(iterations)),
            ("isolation", Value::Bool(isolation)),
            ("failures", num(u64::from(failures))),
            ("results", Value::Array(json_rows)),
        ]);
        println!("{}", serde_json::to_string_pretty(&doc));
    }
    // In --json mode the document must be the last thing on stdout, so
    // the human summary moves to stderr.
    let summary = |line: String| {
        if json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    if failures > 0 {
        summary(format!("verify-all: {failures} failure(s)"));
        std::process::exit(1);
    }
    if isolation {
        summary(
            "verify-all: ok — every prediction matched the simulator exactly \
             and every artifact earned an isolation certificate"
                .to_string(),
        );
    } else {
        summary("verify-all: ok — every prediction matched the simulator exactly".to_string());
    }
}

/// Verifies one (compilation, scheme) pair and cross-checks the counter
/// prediction against a real simulated run.
fn check(
    c: &exec::Compiled,
    scheme: Scheme,
    iterations: u64,
    b: &streambench::Benchmark,
) -> Result<(verify::Verification, String), swpipe::Error> {
    let v = verify::verify(c, scheme, iterations)?;
    let n_input = exec::required_input(c, iterations);
    let input = (b.input)(n_input as usize);
    let run = exec::execute(c, scheme, iterations, &input[..n_input as usize])?;
    let measured = StaticCounters::of_stats(&run.stats);
    let p = &v.prediction;
    let verdict = if !p.exact {
        // No benchmark takes this path today (the suite is branch-free);
        // it exists so a future data-dependent benchmark degrades loudly.
        format!(
            "INEXACT (predicted {:?}, measured {measured:?})",
            p.counters
        )
    } else if p.counters != measured {
        format!(
            "FAIL: prediction diverged from the simulator \
             (predicted {:?}, measured {measured:?})",
            p.counters
        )
    } else {
        format!(
            "ok: {} mem txns, {} shared accesses over {} launches predicted exactly{}",
            p.counters.mem_transactions,
            p.counters.shared_accesses,
            p.launches,
            match verify::max_severity(&v.diagnostics) {
                None => String::new(),
                Some(s) => format!(" ({} finding(s), worst {s})", v.diagnostics.len()),
            }
        )
    };
    Ok((v, verdict))
}

/// Runs the isolation prover at the scheme's canonical granule and
/// renders a one-line verdict.
fn prove_isolation(
    c: &exec::Compiled,
    scheme: Scheme,
) -> (
    Option<verify::IsolationCertificate>,
    Vec<verify::Diagnostic>,
    String,
) {
    match verify::isolate::certify(c, scheme) {
        Ok(iso) => {
            let verdict = match &iso.certificate {
                Some(cert) => format!(
                    "isolated: {} accesses over {} launches proven in-arena \
                     ({} regions, digest {:016x})",
                    cert.accesses_checked, cert.launches, cert.regions, cert.digest
                ),
                None => format!(
                    "FAIL: isolation proof rejected the artifact \
                     ({} finding(s))",
                    iso.diagnostics.len()
                ),
            };
            (iso.certificate, iso.diagnostics, verdict)
        }
        Err(e) => (None, Vec::new(), format!("FAIL: isolation prover ({e})")),
    }
}

/// Manual JSON encoding of diagnostics (`Diagnostic` carries rendering
/// state and does not implement `Serialize`).
fn diagnostics_json(diags: &[verify::Diagnostic]) -> Value {
    Value::Array(
        diags
            .iter()
            .map(|d| {
                obj(vec![
                    ("code", Value::Str(d.code.code().into())),
                    ("name", Value::Str(d.code.name().into())),
                    ("severity", Value::Str(d.severity.to_string())),
                    ("message", Value::Str(d.message.clone())),
                    ("filter", opt_str(&d.filter)),
                    ("site", opt_str(&d.site)),
                    ("node", opt_num(d.node)),
                    ("edge", opt_num(d.edge)),
                ])
            })
            .collect(),
    )
}

/// Manual JSON encoding of a certificate. The digest is a full 64-bit
/// hash, outside JSON's exact-integer range, so it is emitted as hex.
fn certificate_json(cert: Option<&verify::IsolationCertificate>) -> Value {
    match cert {
        None => Value::Null,
        Some(c) => obj(vec![
            ("version", num(u64::from(c.version))),
            ("digest", Value::Str(format!("{:016x}", c.digest))),
            ("iterations", num(c.iterations)),
            ("arena_words", num(c.arena_words)),
            ("regions", num(u64::from(c.regions))),
            ("accesses_checked", num(c.accesses_checked)),
            ("launches", num(c.launches)),
            ("exact", Value::Bool(c.exact)),
        ]),
    }
}

fn usage() {
    eprint!(
        "verify-all — static verification sweep with simulator cross-check\n\n\
         USAGE:\n    verify-all [-v] [--dot <dir>] [--isolation] [--json] [iterations]\n"
    );
    std::process::exit(2);
}
