//! `verify-all`: sweep the whole benchmark suite through the static
//! verifier and cross-check its coalescing prediction against the
//! simulator's dynamic memory counters.
//!
//! ```text
//! verify-all [-v] [--dot <dir>] [iterations]
//! ```
//!
//! For every benchmark × execution scheme the tool:
//!
//! 1. compiles the benchmark and runs the full verifier (modulo-schedule
//!    hazards, buffer-bounds liveness, coalescing classification);
//! 2. executes the same compilation on the simulator and asserts the
//!    predicted memory counters equal the measured ones **exactly** —
//!    any divergence between the static model and the simulator fails
//!    the sweep;
//! 3. fails on any error-severity (`V0101`/`V0201`/`V0301`-class)
//!    diagnostic.
//!
//! `-v` prints every diagnostic (by default only failures are rendered);
//! `--dot <dir>` writes an annotated Graphviz file per benchmark with
//! flagged filters and channels colored by severity.

use swpipe::exec::{self, CompileOptions, Scheme};
use swpipe::report;
use swpipe::verify::{self, StaticCounters};

fn main() {
    let mut verbose = false;
    let mut dot_dir: Option<String> = None;
    let mut iterations = 4u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-v" | "--verbose" => verbose = true,
            "--dot" => match args.next() {
                Some(d) => dot_dir = Some(d),
                None => return usage(),
            },
            other => match other.parse() {
                Ok(n) if n > 0 => iterations = n,
                _ => return usage(),
            },
        }
    }

    let schemes = [
        ("swp", Scheme::Swp { coarsening: 1 }),
        ("swpnc", Scheme::SwpNc { coarsening: 1 }),
        ("swp-raw", Scheme::SwpRaw { coarsening: 1 }),
        ("serial", Scheme::Serial { batch: 1 }),
    ];
    let mut failures = 0u32;
    for b in streambench::suite() {
        let graph = match b.spec.flatten() {
            Ok(g) => g,
            Err(e) => {
                println!("{:<12} FLATTEN FAILED: {e}", b.name);
                failures += 1;
                continue;
            }
        };
        let c = match exec::compile(&graph, &CompileOptions::small_test()) {
            Ok(c) => c,
            Err(e) => {
                println!("{:<12} COMPILE FAILED: {e}", b.name);
                failures += 1;
                continue;
            }
        };
        let mut bench_diags = Vec::new();
        for (label, scheme) in schemes {
            match check(&c, scheme, iterations, &b) {
                Ok((v, verdict)) => {
                    println!("{:<12} {label:<8} {verdict}", b.name);
                    if verbose || !v.passes() {
                        let text = report::render_diagnostics(&v.diagnostics);
                        for line in text.lines() {
                            println!("    {line}");
                        }
                    }
                    if !v.passes() || verdict.starts_with("FAIL") {
                        failures += 1;
                    }
                    bench_diags.extend(v.diagnostics);
                }
                Err(e) => {
                    println!("{:<12} {label:<8} FAIL ({e})", b.name);
                    failures += 1;
                }
            }
        }
        if let Some(dir) = &dot_dir {
            let ann = report::dot_annotations(&bench_diags);
            let dot = c.graph.to_dot_annotated(b.name, &ann);
            let path = format!("{dir}/{}.dot", b.name);
            if let Err(e) = std::fs::write(&path, dot) {
                eprintln!("error: cannot write {path}: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        println!("verify-all: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("verify-all: ok — every prediction matched the simulator exactly");
}

/// Verifies one (compilation, scheme) pair and cross-checks the counter
/// prediction against a real simulated run.
fn check(
    c: &exec::Compiled,
    scheme: Scheme,
    iterations: u64,
    b: &streambench::Benchmark,
) -> Result<(verify::Verification, String), swpipe::Error> {
    let v = verify::verify(c, scheme, iterations)?;
    let n_input = exec::required_input(c, iterations);
    let input = (b.input)(n_input as usize);
    let run = exec::execute(c, scheme, iterations, &input[..n_input as usize])?;
    let measured = StaticCounters::of_stats(&run.stats);
    let p = &v.prediction;
    let verdict = if !p.exact {
        // No benchmark takes this path today (the suite is branch-free);
        // it exists so a future data-dependent benchmark degrades loudly.
        format!(
            "INEXACT (predicted {:?}, measured {measured:?})",
            p.counters
        )
    } else if p.counters != measured {
        format!(
            "FAIL: prediction diverged from the simulator \
             (predicted {:?}, measured {measured:?})",
            p.counters
        )
    } else {
        format!(
            "ok: {} mem txns, {} shared accesses over {} launches predicted exactly{}",
            p.counters.mem_transactions,
            p.counters.shared_accesses,
            p.launches,
            match verify::max_severity(&v.diagnostics) {
                None => String::new(),
                Some(s) => format!(" ({} finding(s), worst {s})", v.diagnostics.len()),
            }
        )
    };
    Ok((v, verdict))
}

fn usage() {
    eprint!(
        "verify-all — static verification sweep with simulator cross-check\n\n\
         USAGE:\n    verify-all [-v] [--dot <dir>] [iterations]\n"
    );
    std::process::exit(2);
}
