fn main() {
    stream_gpu::chaos_soak::main();
}
