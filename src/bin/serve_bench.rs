fn main() {
    stream_gpu::serve_bench::main();
}
