//! Property-based tests spanning the workspace: random stream programs
//! are generated, flattened, steady-state-solved, scheduled, and executed
//! on both the CPU reference and the simulated GPU — the fundamental
//! invariant being that every path preserves the sequential stream
//! semantics bit-for-bit.

use proptest::prelude::*;
use streamir::cpu::{self, CpuCostModel};
use streamir::graph::{FilterSpec, SplitterKind, StreamSpec};
use streamir::ir::{ElemTy, Expr, FnBuilder, Scalar, Stmt};
use swpipe::exec::{self, CompileOptions, Scheme};
use swpipe::instances::{self, ExecConfig};
use swpipe::schedule::{self, SchedulerKind, SearchOptions};

/// A random arithmetic map filter with the given pop/push rates.
fn rate_filter(name: String, pop: u32, push: u32, seed: i32) -> StreamSpec {
    let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
    let acc = f.local(ElemTy::I32);
    let x = f.local(ElemTy::I32);
    f.assign(acc, Expr::i32(seed));
    f.for_loop(0, pop as i32, |_, _| {
        vec![
            Stmt::Pop {
                port: 0,
                dst: Some(x),
            },
            Stmt::Assign(acc, Expr::local(acc).mul(Expr::i32(3)).add(Expr::local(x))),
        ]
    });
    f.for_loop(0, push as i32, |_, j| {
        vec![Stmt::Push {
            port: 0,
            value: Expr::local(acc).add(Expr::local(j).mul(Expr::i32(seed | 1))),
        }]
    });
    StreamSpec::filter(FilterSpec::new(name, f.build().expect("valid")))
}

/// Strategy: a random pipeline / split-join composition, depth <= 2.
fn stream_strategy() -> impl Strategy<Value = StreamSpec> {
    let leaf = (1u32..4, 1u32..4, -3i32..4).prop_map(|(pop, push, seed)| {
        rate_filter(format!("f{pop}_{push}_{seed}"), pop, push, seed)
    });
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(StreamSpec::pipeline),
            // Branches must share an aggregate push/pop ratio for the
            // balance equations to be consistent; replicate one branch
            // shape (the flattener disambiguates filter names).
            (inner, 2usize..4, 1u32..3).prop_map(|(branch, n, w)| {
                StreamSpec::split_join(
                    SplitterKind::round_robin_uniform(n, w),
                    vec![branch; n],
                    vec![w; n],
                )
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any well-formed composition flattens, solves, and balances: for
    /// every channel, producer tokens equal consumer tokens per iteration.
    #[test]
    fn steady_state_balances(spec in stream_strategy()) {
        let g = spec.flatten().expect("flattens");
        let s = streamir::sdf::solve(&g).expect("solves");
        for (i, e) in g.edges().iter().enumerate() {
            let eid = streamir::graph::EdgeId(i as u32);
            let produced = u64::from(s.reps(e.src)) * u64::from(g.push_rate(eid));
            let consumed = u64::from(s.reps(e.dst)) * u64::from(g.pop_rate(eid));
            prop_assert_eq!(produced, consumed);
        }
    }

    /// The heuristic scheduler always produces a validator-clean schedule,
    /// whatever the graph shape.
    #[test]
    fn heuristic_schedules_validate(spec in stream_strategy(), sms in 1u32..5) {
        let g = spec.flatten().expect("flattens");
        let cfg = ExecConfig::uniform(g.len(), 4, 16, 10);
        let ig = instances::build(&g, &cfg).expect("builds");
        let (sched, _) = schedule::find(
            &ig,
            &cfg,
            sms,
            &SearchOptions { scheduler: SchedulerKind::Heuristic, ..SearchOptions::default() },
        ).expect("schedules");
        schedule::validate(&ig, &cfg, &sched, sms, 16).expect("validates");
    }

    /// CPU executor and GPU simulator agree bit-for-bit on random graphs
    /// through the full compile-and-execute pipeline.
    #[test]
    fn gpu_matches_cpu_on_random_graphs(spec in stream_strategy()) {
        let g = spec.flatten().expect("flattens");
        let compiled = match exec::compile(&g, &CompileOptions::small_test()) {
            Ok(c) => c,
            Err(e) => return Err(TestCaseError::fail(format!("compile: {e}"))),
        };
        let iters = 2u64;
        let n_input = exec::required_input(&compiled, iters);
        let steady = streamir::sdf::solve(&g).expect("solves");
        let per = steady.input_tokens_per_iteration(&g).max(1);
        let input: Vec<Scalar> = (0..n_input + 2 * per)
            .map(|i| Scalar::I32((i as i32).wrapping_mul(7) % 1000 - 500))
            .collect();
        let gpu = exec::execute(&compiled, Scheme::Swp { coarsening: 1 }, iters,
                                &input[..n_input as usize]).expect("executes");
        let cpu_iters = (n_input.saturating_sub(steady.input_tokens_for_init(&g)))
            .div_ceil(per) + 1;
        let cpu = cpu::run(&g, &steady, cpu_iters, &input, &CpuCostModel::default())
            .expect("cpu runs");
        prop_assert!(gpu.outputs.len() <= cpu.outputs.len());
        prop_assert_eq!(&gpu.outputs[..], &cpu.outputs[..gpu.outputs.len()]);
    }

    /// The GPU's warp-synchronous evaluator agrees bit-for-bit with the
    /// reference interpreter on randomly generated work functions (random
    /// expression shapes, loops, divergent branches).
    #[test]
    fn warp_interpreter_matches_reference(
        seed in 0i32..1000,
        pop in 1u32..5,
        push in 1u32..5,
        taps in 0i32..6,
    ) {
        use gpusim::{BlockWork, BufferBinding, DeviceConfig, Gpu, InstanceExec,
                     Launch, Layout};
        use streamir::ir::interp::{self, VecChannels};
        use streamir::ir::OpCensus;

        // A filter mixing arithmetic, a peeking loop, and a divergent branch.
        let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
        let acc = f.local(ElemTy::I32);
        let x = f.local(ElemTy::I32);
        f.assign(acc, Expr::i32(seed));
        f.for_loop(0, taps, |_, j| {
            vec![Stmt::Assign(
                acc,
                Expr::local(acc)
                    .mul(Expr::i32(5))
                    .add(Expr::peek(0, Expr::local(j).rem(Expr::i32(pop as i32)))),
            )]
        });
        f.for_loop(0, pop as i32, |_, _| {
            vec![
                Stmt::Pop { port: 0, dst: Some(x) },
                Stmt::Assign(acc, Expr::local(acc).bitxor(Expr::local(x))),
            ]
        });
        f.if_else(
            Expr::local(acc).rem(Expr::i32(2)).eq(Expr::i32(0)),
            vec![Stmt::Assign(acc, Expr::local(acc).shr(Expr::i32(1)))],
            vec![Stmt::Assign(acc, Expr::local(acc).mul(Expr::i32(3)).add(Expr::i32(1)))],
        );
        f.for_loop(0, push as i32, |_, j| {
            vec![Stmt::Push {
                port: 0,
                value: Expr::local(acc).add(Expr::local(j)),
            }]
        });
        let wf = f.build().expect("valid");

        let threads = 32u32;
        let in_tokens = threads * pop;
        let out_tokens = threads * push;
        let inputs: Vec<Scalar> = (0..in_tokens)
            .map(|i| Scalar::I32((i as i32).wrapping_mul(2654435761u32 as i32) >> 8))
            .collect();

        // Reference: thread t consumes [t*pop, (t+1)*pop).
        let mut expect = Vec::new();
        for t in 0..threads {
            let window = inputs[(t * pop) as usize..((t + 1) * pop) as usize].to_vec();
            let mut ch = VecChannels::new(vec![window], 1);
            let mut counts = OpCensus::default();
            interp::execute(&wf, &mut ch, &mut counts).expect("reference runs");
            expect.extend(ch.outputs[0].clone());
        }

        // GPU: one warp over a sequential buffer.
        let mut gpu = Gpu::new(DeviceConfig::small_test());
        let inp = gpu.alloc_tokens(in_tokens);
        let out = gpu.alloc_tokens(out_tokens);
        for (i, &v) in inputs.iter().enumerate() {
            gpu.memory_mut().write_token(inp + i as u32, v);
        }
        let launch = Launch {
            threads_per_block: threads,
            regs_per_thread: 32,
            blocks: vec![BlockWork {
                items: vec![InstanceExec {
                    work: &wf,
                    active_threads: threads,
                    inputs: vec![BufferBinding::whole(inp, in_tokens, ElemTy::I32, Layout::Sequential, pop)],
                    outputs: vec![BufferBinding::whole(out, out_tokens, ElemTy::I32, Layout::Sequential, push)],
                    shared_staging: false,
                    state_base: None,
                    label: None,
                }],
            }],
            sm_offset: 0,
        };
        gpu.run(&launch).expect("gpu runs");
        for (i, &e) in expect.iter().enumerate() {
            let got = gpu.memory().read_token(out + i as u32, ElemTy::I32);
            prop_assert_eq!(got, e, "token {}", i);
        }
    }

    /// Buffer bindings are bijective: over one region, every (lane, token)
    /// pair of the consumer maps to a distinct in-range address.
    #[test]
    fn transposed_binding_is_injective(
        rate in 1u32..9,
        firings in 1u64..40,
    ) {
        use gpusim::{BufferBinding, Layout};
        let region = u64::from(rate) * firings;
        let b = BufferBinding {
            base_word: 0,
            region_tokens: region,
            regions: 1,
            layout: Layout::Transposed { group: 16 },
            consumer_rate: rate,
            endpoint_rate: rate,
            abs_start: 0,
        };
        let mut seen = std::collections::HashSet::new();
        for lane in 0..firings as u32 {
            for n in 0..u64::from(rate) {
                let a = b.addr(lane, n);
                prop_assert!(a < region, "addr {a} outside region {region}");
                prop_assert!(seen.insert(a), "duplicate address {a}");
            }
        }
    }
}

/// A random (possibly branching, peeking, array/table-using) work
/// function for the validator-vs-interpreter agreement property below.
#[allow(clippy::too_many_arguments)]
fn random_work(
    pop: u32,
    push: u32,
    peek_extra: u32,
    use_array: bool,
    use_table: bool,
    branch: u8,
    seed: i32,
) -> streamir::ir::WorkFunction {
    use streamir::ir::Table;
    let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
    let acc = f.local(ElemTy::I32);
    let x = f.local(ElemTy::I32);
    f.assign(acc, Expr::i32(seed));
    let arr = use_array.then(|| f.array(ElemTy::I32, 4));
    let tab = use_table.then(|| f.table(Table::i32(&[2, 3, 5, 7])));
    for d in 0..peek_extra {
        f.assign(
            acc,
            Expr::local(acc).add(Expr::peek(0, Expr::i32(d as i32))),
        );
    }
    f.for_loop(0, pop as i32, |_, _| {
        vec![
            Stmt::Pop {
                port: 0,
                dst: Some(x),
            },
            Stmt::Assign(acc, Expr::local(acc).mul(Expr::i32(3)).add(Expr::local(x))),
        ]
    });
    if let Some(a) = arr {
        f.store(a, Expr::i32(1), Expr::local(acc));
        f.assign(acc, Expr::local(acc).add(Expr::load(a, Expr::i32(1))));
    }
    if let Some(t) = tab {
        f.assign(acc, Expr::local(acc).add(Expr::table(t, Expr::i32(2))));
    }
    match branch {
        // A constant branch: still a branch to the validator.
        1 => {
            f.if_else(
                Expr::i32(1),
                vec![Stmt::Assign(acc, Expr::local(acc).add(Expr::i32(1)))],
                vec![],
            );
        }
        // A data-dependent branch with asymmetric arms, so the static
        // worst-case census strictly dominates one dynamic path.
        2 => {
            f.if_else(
                Expr::local(acc).lt(Expr::i32(0)),
                vec![Stmt::Assign(acc, Expr::local(acc).neg())],
                vec![
                    Stmt::Assign(acc, Expr::local(acc).add(Expr::i32(5))),
                    Stmt::Assign(x, Expr::local(acc).mul(Expr::i32(2))),
                ],
            );
        }
        _ => {}
    }
    f.for_loop(0, push as i32, |_, j| {
        vec![Stmt::Push {
            port: 0,
            value: Expr::local(acc).add(Expr::local(j)),
        }]
    });
    f.build().expect("generated work function validates")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The validator's static channel rates equal the interpreter's
    /// dynamic pop/push counts, and its op census equals the dynamic
    /// operation counts exactly on branch-free bodies (and dominates
    /// them per class when the body branches).
    #[test]
    fn static_rates_and_census_agree_with_dynamic_execution(
        pop in 1u32..4,
        push in 1u32..4,
        peek_extra in 0u32..4,
        array_sel in 0u8..2,
        table_sel in 0u8..2,
        branch in 0u8..3,
        seed in -10i32..10,
    ) {
        use streamir::ir::{interp, OpCensus};
        let wf = random_work(pop, push, peek_extra, array_sel == 1, table_sel == 1, branch, seed);
        let info = wf.info().clone();

        let supply = (pop.max(peek_extra) + 4) as usize;
        let tokens: Vec<Scalar> = (0..supply).map(|i| Scalar::I32(i as i32 - 3)).collect();
        let mut ch = interp::VecChannels::new(vec![tokens], 1);
        let mut counts = OpCensus::default();
        interp::execute(&wf, &mut ch, &mut counts).expect("firing runs");

        // Static rates = dynamic consumption/production.
        prop_assert_eq!(ch.cursors[0] as u32, info.inputs[0].pop);
        prop_assert_eq!(ch.cursors[0] as u32, wf.pop_rate(0));
        prop_assert_eq!(ch.outputs[0].len() as u32, info.outputs[0]);
        prop_assert_eq!(wf.push_rate(0), info.outputs[0]);
        prop_assert_eq!(wf.peek_rate(0), pop.max(peek_extra));
        prop_assert_eq!(wf.is_peeking(), peek_extra > pop);
        prop_assert_eq!(info.has_branches, branch != 0);

        // Static census: exact without branches, a per-class upper bound
        // (worst case over arms) with them.
        if info.has_branches {
            prop_assert!(counts.alu <= info.census.alu);
            prop_assert!(counts.transcendental <= info.census.transcendental);
            prop_assert!(counts.channel_reads <= info.census.channel_reads);
            prop_assert!(counts.channel_writes <= info.census.channel_writes);
            prop_assert!(counts.array_ops <= info.census.array_ops);
            prop_assert!(counts.table_loads <= info.census.table_loads);
            prop_assert!(counts.control <= info.census.control);
            // Channel traffic is rate-static even under branches.
            prop_assert_eq!(counts.channel_reads, info.census.channel_reads);
            prop_assert_eq!(counts.channel_writes, info.census.channel_writes);
        } else {
            prop_assert_eq!(&counts, &info.census);
        }
    }
}
