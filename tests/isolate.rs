//! Integration tests for the tenant-isolation prover
//! ([`swpipe::verify::isolate`]).
//!
//! The headline properties:
//!
//! * **Differential**: every benchmark in the suite earns an
//!   [`swpipe::verify::IsolationCertificate`] under every execution
//!   scheme, with zero `V04xx` findings, and the certificate re-verifies
//!   against the artifact.
//! * **Placement universe**: a certified artifact runs byte-identically
//!   and fault-free at *every* base SM the partitioner could ever assign
//!   its slice ([`swpipe::serve::placement_universe`]) — the proof
//!   quantifies over placements, so no placement can make a certified
//!   artifact address outside its arena.
//! * **Adversarial**: hand-built bindings that scatter past the arena,
//!   alias a neighbor's channel, or ship checkpoint words into a foreign
//!   region are each rejected with their precise diagnostic
//!   (`V0401`/`V0402`/`V0403`) — and, property-tested, a randomly skewed
//!   binding passes `check_binding` **iff** its whole address span is
//!   contained in its owner's region.

use gpusim::{BufferBinding, DeviceConfig, Layout};
use proptest::prelude::*;
use streamir::graph::{FilterSpec, StreamSpec};
use streamir::ir::{ElemTy, Expr, FnBuilder, Scalar};
use swpipe::exec::{self, CompileOptions, RunOptions, Scheme, SmPlacement};
use swpipe::serve::placement_universe;
use swpipe::verify::isolate::{self, RegionOwner};
use swpipe::verify::{self, Code};

const SCHEMES: [Scheme; 4] = [
    Scheme::Swp { coarsening: 1 },
    Scheme::SwpNc { coarsening: 1 },
    Scheme::SwpRaw { coarsening: 1 },
    Scheme::Serial { batch: 1 },
];

fn rate_filter(name: &str, pop: u32, push: u32, seed: i32) -> StreamSpec {
    let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
    let acc = f.local(ElemTy::I32);
    let x = f.local(ElemTy::I32);
    f.assign(acc, Expr::i32(seed));
    for _ in 0..pop {
        f.pop_into(0, x);
        f.assign(acc, Expr::local(acc).mul(Expr::i32(3)).add(Expr::local(x)));
    }
    for i in 0..push {
        f.push(0, Expr::local(acc).add(Expr::i32(i as i32 * seed)));
    }
    StreamSpec::filter(FilterSpec::new(name, f.build().expect("valid filter")))
}

fn compile_chain(rates: &[(u32, u32, i32)], num_sms: u32) -> exec::Compiled {
    let spec = StreamSpec::pipeline(
        rates
            .iter()
            .enumerate()
            .map(|(i, &(p, q, s))| rate_filter(&format!("f{i}"), p, q, s))
            .collect::<Vec<_>>(),
    );
    let graph = spec.flatten().expect("chain flattens");
    let opts = CompileOptions {
        device: DeviceConfig {
            num_sms,
            ..DeviceConfig::small_test()
        },
        ..CompileOptions::small_test()
    };
    exec::compile(&graph, &opts).expect("chain compiles")
}

/// Differential sweep: every benchmark × scheme earns a certificate with
/// zero findings, and the certificate re-verifies against the artifact.
#[test]
fn every_benchmark_certifies_under_every_scheme() {
    for b in streambench::suite() {
        let graph = b.spec.flatten().expect("benchmark flattens");
        let c = exec::compile(&graph, &CompileOptions::small_test())
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", b.name));
        for scheme in SCHEMES {
            let iso = isolate::certify(&c, scheme)
                .unwrap_or_else(|e| panic!("{}/{scheme:?}: prover failed: {e}", b.name));
            assert!(
                iso.diagnostics.is_empty(),
                "{}/{scheme:?}: unexpected findings: {:?}",
                b.name,
                iso.diagnostics
            );
            let cert = iso
                .certificate
                .unwrap_or_else(|| panic!("{}/{scheme:?}: no certificate", b.name));
            assert!(
                cert.exact,
                "{}/{scheme:?}: proof fell back to spans",
                b.name
            );
            assert!(cert.accesses_checked > 0);
            verify::verify_certificate(&c, scheme, &cert)
                .unwrap_or_else(|e| panic!("{}/{scheme:?}: re-verify failed: {e}", b.name));
        }
    }
}

/// A certified artifact placed at every base SM of a wider shared device
/// runs without faults and produces the solo run's exact outputs:
/// placement moves compute, never addresses, which is precisely what the
/// certificate quantified over.
#[test]
fn certified_artifact_runs_identically_across_the_placement_universe() {
    let width = 4u32;
    let shared = DeviceConfig {
        num_sms: 16,
        ..DeviceConfig::small_test()
    };
    let c = compile_chain(&[(1, 2, 1), (2, 3, 2), (3, 1, -3)], width);
    let scheme = Scheme::Swp { coarsening: 1 };
    let cert = isolate::certify(&c, scheme)
        .expect("prover runs")
        .certificate
        .expect("chain certifies");
    verify::verify_certificate(&c, scheme, &cert).expect("certificate verifies");

    let iterations = 2u64;
    let n_input = exec::required_input(&c, iterations);
    let input: Vec<Scalar> = (0..n_input).map(|i| Scalar::I32(i as i32 % 17)).collect();
    let solo = exec::execute(&c, scheme, iterations, &input).expect("solo run");

    let universe = placement_universe(shared.num_sms, width);
    assert_eq!(universe, (0..=12).collect::<Vec<_>>());
    for base_sm in universe {
        let opts = RunOptions {
            placement: Some(SmPlacement {
                device: shared.clone(),
                base_sm,
            }),
            ..RunOptions::default()
        };
        let run = exec::execute_with(&c, scheme, iterations, &input, &opts)
            .unwrap_or_else(|e| panic!("base_sm {base_sm}: run failed: {e}"));
        assert_eq!(run.retries, 0, "base_sm {base_sm}: certified run faulted");
        assert_eq!(
            run.outputs, solo.outputs,
            "base_sm {base_sm}: placement changed results"
        );
    }
}

/// The three adversarial fixtures, each caught with its precise code.
#[test]
fn adversarial_fixtures_are_rejected_with_their_precise_codes() {
    let c = compile_chain(&[(1, 2, 1), (2, 3, 2), (3, 1, -3)], 4);
    let scheme = Scheme::Swp { coarsening: 1 };
    let map = isolate::region_map(&c, scheme, 1).expect("map builds");

    // Scatter past the arena: inflated geometry -> V0401.
    let own = map.region_of(RegionOwner::Channel(0)).expect("channel 0");
    let escape = BufferBinding {
        base_word: own.base as u32,
        region_tokens: map.arena_words + 512,
        regions: 1,
        layout: Layout::Sequential,
        consumer_rate: 1,
        endpoint_rate: 1,
        abs_start: 0,
    };
    let d = isolate::check_binding(&map, &escape, RegionOwner::Channel(0)).expect("caught");
    assert_eq!(d.code, Code::IsolationEscape, "{d}");

    // Alias a neighbor's channel buffer -> V0402 naming the victim.
    let victim = map.region_of(RegionOwner::Channel(1)).expect("channel 1");
    let alias = BufferBinding {
        base_word: victim.base as u32,
        region_tokens: victim.words,
        regions: 1,
        layout: Layout::Sequential,
        consumer_rate: 1,
        endpoint_rate: 1,
        abs_start: 0,
    };
    let d = isolate::check_binding(&map, &alias, RegionOwner::Channel(0)).expect("caught");
    assert_eq!(d.code, Code::ForeignRegionAccess, "{d}");
    assert_eq!(d.edge, Some(1), "victim channel is attributed");

    // Ship checkpoint words into a channel region -> V0403.
    let ds = isolate::check_ship_targets(&map, &[(own.base, 1)]);
    assert_eq!(ds.len(), 1, "{ds:?}");
    assert_eq!(ds[0].code, Code::CheckpointEscape, "{}", ds[0]);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Random chains at random slice widths certify, and the certified
    /// artifact runs fault-free with solo-identical outputs at a random
    /// placement from the universe — the "certified artifacts never
    /// fault" half of the acceptance criterion, over random tenant
    /// geometries (slice width stands in for tenant count: `k` admitted
    /// tenants of a 16-SM device get widths that sum to 16).
    #[test]
    fn random_certified_chains_never_fault_under_random_placement(
        rates in prop::collection::vec((1u32..4, 1u32..4, -3i32..4), 1..4),
        width in 2u32..5,
        placement_seed in 0u32..1024,
        scheme_idx in 0usize..SCHEMES.len(),
    ) {
        let shared = DeviceConfig { num_sms: 16, ..DeviceConfig::small_test() };
        let c = compile_chain(&rates, width);
        let scheme = SCHEMES[scheme_idx];
        let iso = isolate::certify(&c, scheme).expect("prover runs");
        let cert = iso.certificate.expect("well-formed chain certifies");
        verify::verify_certificate(&c, scheme, &cert).expect("certificate verifies");

        let universe = placement_universe(shared.num_sms, width);
        prop_assert!(!universe.is_empty());
        let base_sm = universe[placement_seed as usize % universe.len()];
        let iterations = 2u64;
        let n_input = exec::required_input(&c, iterations);
        let input: Vec<Scalar> = (0..n_input).map(|i| Scalar::I32(i as i32 % 13)).collect();
        let solo = exec::execute(&c, scheme, iterations, &input).expect("solo run");
        let opts = RunOptions {
            placement: Some(SmPlacement { device: shared, base_sm }),
            ..RunOptions::default()
        };
        let run = exec::execute_with(&c, scheme, iterations, &input, &opts)
            .expect("placed run");
        prop_assert_eq!(run.retries, 0, "certified artifact faulted at base {}", base_sm);
        prop_assert_eq!(run.outputs, solo.outputs);
    }

    /// `check_binding` is exactly the span-containment oracle: a randomly
    /// skewed binding passes iff its whole address span lies inside its
    /// owner's region — so no adversarial skew that leaves the region can
    /// ever pass, and no in-region binding is ever rejected.
    #[test]
    fn skewed_bindings_pass_iff_their_span_is_contained(
        base_shift in 0u64..4096,
        tokens in 1u64..4096,
        regions in 1u32..4,
        rate in 1u32..5,
    ) {
        let c = compile_chain(&[(1, 2, 1), (2, 3, 2), (3, 1, -3)], 4);
        let map = isolate::region_map(&c, Scheme::Swp { coarsening: 1 }, 1)
            .expect("map builds");
        let own = *map.region_of(RegionOwner::Channel(0)).expect("channel 0");
        let b = BufferBinding {
            base_word: (own.base + base_shift) as u32,
            region_tokens: tokens,
            regions,
            layout: Layout::Transposed { group: 4 },
            consumer_rate: rate,
            endpoint_rate: rate,
            abs_start: 0,
        };
        let (span_base, span_words) = b.span();
        let contained = span_base >= own.base
            && span_base + span_words <= own.base + own.words;
        let verdict = isolate::check_binding(&map, &b, RegionOwner::Channel(0));
        prop_assert_eq!(
            verdict.is_none(),
            contained,
            "span [{}, {}) vs region [{}, {}): got {:?}",
            span_base,
            span_base + span_words,
            own.base,
            own.base + own.words,
            verdict
        );
        // And the oracle is honest: every concrete address the binding
        // can produce lies inside its span.
        for lane in 0..8u32 {
            for n in 0..64u64 {
                let a = b.addr(lane, n);
                prop_assert!(a >= span_base && a < span_base + span_words);
            }
        }
    }
}
