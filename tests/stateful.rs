//! End-to-end tests of stateful filters — the paper's stated future work
//! ("Handling stateful filters on GPUs is a possible future work"),
//! implemented here: state variables persist across firings, stateful
//! filters run single-threaded with device-resident state, their
//! instances are serialized by explicit dependences (giving a non-zero
//! RecMII), and coarsening is rejected because it would interleave
//! sub-firings out of state order.

use streamir::cpu::{self, CpuCostModel};
use streamir::graph::{FilterSpec, StreamSpec};
use streamir::ir::{ElemTy, Expr, FnBuilder, Scalar};
use swpipe::exec::{self, CompileOptions, Scheme};
use swpipe::instances::{self, ExecConfig};

/// A running-sum accumulator: `state += input; push state`.
fn accumulator(name: &str) -> StreamSpec {
    let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
    let acc = f.state(ElemTy::I32, Scalar::I32(0));
    let x = f.local(ElemTy::I32);
    f.pop_into(0, x);
    f.store_state(acc, Expr::state(acc).add(Expr::local(x)));
    f.push(0, Expr::state(acc));
    StreamSpec::filter(FilterSpec::new(name, f.build().expect("valid")))
}

/// A one-pole IIR filter over integers: `y = y/2 + x; push y`.
fn iir(name: &str) -> StreamSpec {
    let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
    let y = f.state(ElemTy::I32, Scalar::I32(0));
    let x = f.local(ElemTy::I32);
    f.pop_into(0, x);
    f.store_state(y, Expr::state(y).div(Expr::i32(2)).add(Expr::local(x)));
    f.push(0, Expr::state(y));
    StreamSpec::filter(FilterSpec::new(name, f.build().expect("valid")))
}

fn stateless_map(name: &str, k: i32) -> StreamSpec {
    let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
    let x = f.local(ElemTy::I32);
    f.pop_into(0, x);
    f.push(0, Expr::local(x).mul(Expr::i32(k)));
    StreamSpec::filter(FilterSpec::new(name, f.build().expect("valid")))
}

#[test]
fn cpu_accumulator_is_a_prefix_sum() {
    let g = accumulator("acc").flatten().unwrap();
    let s = streamir::sdf::solve(&g).unwrap();
    let input: Vec<Scalar> = (1..=8).map(Scalar::I32).collect();
    let run = cpu::run(&g, &s, 8, &input, &CpuCostModel::default()).unwrap();
    let got: Vec<i32> = run.outputs.iter().map(|v| v.as_i32()).collect();
    assert_eq!(got, vec![1, 3, 6, 10, 15, 21, 28, 36]);
}

#[test]
fn gpu_stateful_pipeline_matches_cpu_bit_exact() {
    // stateless → stateful → stateless: the stateful stage serializes, its
    // neighbours stay data-parallel.
    let spec = StreamSpec::pipeline(vec![
        stateless_map("pre", 3),
        iir("iir"),
        stateless_map("post", 2),
    ]);
    let graph = spec.flatten().unwrap();
    let compiled = exec::compile(&graph, &CompileOptions::small_test()).unwrap();
    // The stateful stage must be single-threaded.
    assert_eq!(compiled.exec_cfg.threads[1], 1);

    let iters = 8;
    let n_input = exec::required_input(&compiled, iters);
    let input: Vec<Scalar> = (0..n_input + 64)
        .map(|i| Scalar::I32(i as i32 % 50 - 25))
        .collect();
    let gpu = exec::execute(
        &compiled,
        Scheme::Swp { coarsening: 1 },
        iters,
        &input[..n_input as usize],
    )
    .unwrap();

    let steady = streamir::sdf::solve(&graph).unwrap();
    let per = steady.input_tokens_per_iteration(&graph).max(1);
    let cpu_iters = n_input.div_ceil(per) + 1;
    let cpu = cpu::run(&graph, &steady, cpu_iters, &input, &CpuCostModel::default()).unwrap();
    assert!(!gpu.outputs.is_empty());
    assert_eq!(gpu.outputs[..], cpu.outputs[..gpu.outputs.len()]);
}

#[test]
fn stateful_coarsening_is_rejected() {
    let graph = iir("iir").flatten().unwrap();
    let compiled = exec::compile(&graph, &CompileOptions::small_test()).unwrap();
    let e = exec::execute(&compiled, Scheme::Swp { coarsening: 4 }, 8, &[]).unwrap_err();
    assert!(matches!(e, swpipe::Error::Api(_)), "{e}");
}

#[test]
fn stateful_instances_have_serial_dependences() {
    // A stateful filter after a 1→4 expander fires 4 instances per
    // iteration; they must be chained, including the iteration wrap.
    let mut up = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
    let x = up.local(ElemTy::I32);
    up.pop_into(0, x);
    for i in 0..4 {
        up.push(0, Expr::local(x).add(Expr::i32(i)));
    }
    let spec = StreamSpec::pipeline(vec![
        StreamSpec::filter(FilterSpec::new("up", up.build().unwrap())),
        accumulator("acc"),
    ]);
    let graph = spec.flatten().unwrap();
    let cfg = ExecConfig {
        regs_per_thread: 16,
        threads_per_block: 4,
        threads: vec![1, 1],
        delay: vec![5, 5],
    };
    let ig = instances::build(&graph, &cfg).unwrap();
    assert_eq!(ig.reps, vec![1, 4]);
    let state_deps: Vec<_> = ig.deps.iter().filter(|d| d.edge.is_none()).collect();
    // k=1..3 chained (3 deps) + the wrap-around (1 dep).
    assert_eq!(state_deps.len(), 4);
    assert!(state_deps.iter().any(|d| d.jlag == -1));
    // The wrap makes the instance graph cyclic: RecMII is nonzero.
    assert!(ig.rec_mii(&cfg) > 0);
}

#[test]
fn stateful_requires_single_thread_in_model() {
    let graph = accumulator("acc").flatten().unwrap();
    let cfg = ExecConfig::uniform(1, 4, 16, 5); // 4 threads: invalid
    let err = instances::build(&graph, &cfg).unwrap_err();
    assert!(
        matches!(err, swpipe::Error::Api(ref m) if m.contains("single-threaded")),
        "multi-threaded stateful must be rejected with a typed error, got: {err}"
    );
}

#[test]
fn interpreter_rejects_stateless_entry_for_stateful_filter() {
    let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
    let sid = f.state(ElemTy::I32, Scalar::I32(7));
    let x = f.local(ElemTy::I32);
    f.pop_into(0, x);
    f.push(0, Expr::state(sid).add(Expr::local(x)));
    let wf = f.build().unwrap();
    assert!(wf.is_stateful());
    assert_eq!(wf.initial_state(), vec![Scalar::I32(7)]);

    let mut ch = streamir::ir::interp::VecChannels::new(vec![vec![Scalar::I32(1)]], 1);
    let mut counts = streamir::ir::OpCensus::default();
    let e = streamir::ir::interp::execute(&wf, &mut ch, &mut counts).unwrap_err();
    assert!(matches!(e, streamir::Error::Trap(_)));

    // With persistent state it works and the state evolves.
    let mut state = wf.initial_state();
    streamir::ir::interp::execute_stateful(&wf, &mut ch, &mut state, &mut counts).unwrap();
    assert_eq!(ch.outputs[0], vec![Scalar::I32(8)]);
}

/// A feedback loop (running sum via the loop, not via state) executes on
/// the GPU bit-exactly: the joiner merges input with the fed-back
/// accumulator, the body adds, the splitter returns the sum outward and
/// around. The loop's single initial token caps the execution at one
/// thread per instance — the structural analogue of statefulness.
#[test]
fn feedback_loop_runs_on_gpu() {
    use streamir::graph::{FeedbackLoopSpec, SplitterKind};

    let body = {
        let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
        let x = f.local(ElemTy::I32);
        let s = f.local(ElemTy::I32);
        f.pop_into(0, x);
        f.pop_into(0, s);
        let sum = Expr::local(x).add(Expr::local(s));
        f.push(0, sum.clone());
        f.push(0, sum);
        StreamSpec::filter(FilterSpec::new("add", f.build().unwrap()))
    };
    let spec = StreamSpec::feedback_loop(FeedbackLoopSpec {
        joiner: [1, 1],
        body: Box::new(body),
        splitter: SplitterKind::RoundRobin(vec![1, 1]),
        feedback: None,
        initial: vec![Scalar::I32(0)],
    });
    let graph = spec.flatten().unwrap();
    let compiled = exec::compile(&graph, &CompileOptions::small_test()).unwrap();
    // The loop cap forces single-threaded instances.
    assert!(compiled.exec_cfg.threads.iter().all(|&t| t == 1));

    let iters = 16;
    let n_input = exec::required_input(&compiled, iters);
    let input: Vec<Scalar> = (1..=n_input as i32 + 8).map(Scalar::I32).collect();
    let gpu = exec::execute(
        &compiled,
        Scheme::Swp { coarsening: 1 },
        iters,
        &input[..n_input as usize],
    )
    .unwrap();

    // Prefix sums of 1, 2, 3, ...
    let expect: Vec<i32> = (1..=gpu.outputs.len() as i32)
        .scan(0, |acc, x| {
            *acc += x;
            Some(*acc)
        })
        .collect();
    let got: Vec<i32> = gpu.outputs.iter().map(|v| v.as_i32()).collect();
    assert!(!got.is_empty());
    assert_eq!(got, expect);

    // And the CPU executor agrees, as always.
    let steady = streamir::sdf::solve(&graph).unwrap();
    let cpu = cpu::run(&graph, &steady, iters, &input, &CpuCostModel::default()).unwrap();
    assert_eq!(gpu.outputs[..], cpu.outputs[..gpu.outputs.len()]);
}
