//! Acceptance tests for the learned cost model (`swpipe::learn`): beam
//! quality against the exact lower bound, search-invocation pruning,
//! semantic neutrality of beam schedules, warm-started serving, and the
//! byte-stability of the committed dataset/model artifacts.
//!
//! Every test takes the file-local [`counter_lock`]: several read the
//! process-global [`schedule::search_invocations`] counter, and the
//! others compile (which bumps it), so they must not interleave.

use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use streamir::ir::Scalar;
use swpipe::exec::{self, CompileOptions};
use swpipe::learn::{CostModel, CostModelHandle};
use swpipe::pipeline::{
    FaultPolicy, LadderRung, PipelineOptions, ResilientCompiled, ResilientPipeline, StageBudgets,
};
use swpipe::schedule;
use swpipe::serve::{EventEngine, Job, QosClass, ServeOptions};

fn counter_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The committed model artifact, schema-checked against the live
/// feature extractor.
fn committed_model() -> CostModel {
    let text = std::fs::read_to_string("models/cost_model.json")
        .expect("committed model artifact exists (cargo run --bin learn_train)");
    let model = CostModel::from_json(&text).expect("committed model parses");
    model
        .check_schema()
        .expect("committed model matches the live feature schema");
    model
}

fn handle() -> CostModelHandle {
    CostModelHandle::new(committed_model())
}

/// Compile options for the beam path: model installed, exact rungs
/// irrelevant (the beam rung ships first).
fn beam_pipeline(num_sms: u32) -> ResilientPipeline {
    let mut compile = CompileOptions::small_test();
    compile.device.num_sms = num_sms;
    compile.search.cost_model = Some(handle());
    ResilientPipeline::new(PipelineOptions {
        compile,
        ..PipelineOptions::default()
    })
}

/// Compile options for the fresh full-ladder baseline: no model, the
/// exact-ILP rung armed with a 1 ns budget — nonzero (so the rung
/// genuinely runs and the search is invoked) but exhausted at the
/// solver's first branch-and-bound node check, so the ladder degrades
/// deterministically to the heuristic without burning wall clock on
/// the suite's large ILP formulations. The relaxed rung is skipped
/// outright (its budget floor would let a large root LP run): the
/// ladder's fresh-compile cost here — exact search, then the
/// heuristic's bound computation and its search — is its *cheapest*
/// honest configuration, so the measured pruning factor is a floor.
fn ladder_pipeline(num_sms: u32) -> ResilientPipeline {
    let mut compile = CompileOptions::small_test();
    compile.device.num_sms = num_sms;
    compile.search.max_attempts = 1;
    ResilientPipeline::new(PipelineOptions {
        compile,
        budgets: StageBudgets {
            exact_ilp: Duration::from_nanos(1),
            relaxed_ilp: Duration::ZERO,
            ..StageBudgets::default()
        },
        ..PipelineOptions::default()
    })
}

fn run(rc: &ResilientCompiled, iters: u64, input: fn(usize) -> Vec<Scalar>) -> Vec<Scalar> {
    let needed = exec::required_input(&rc.compiled, iters);
    exec::execute(&rc.compiled, rc.scheme, iters, &input(needed as usize))
        .unwrap()
        .outputs
}

/// Beam quality and pruning on the full benchmark suite.
///
/// * Quality: the shipped beam II stays within 5% of the search's exact
///   lower bound (`res_mii / rec_mii / max-delay`). The exact-ILP II is
///   sandwiched between that bound and the beam II, so this implies the
///   beam is within 5% of the exact-ILP II on every benchmark.
/// * Pruning: a fresh beam compile costs one scheduler search where the
///   fresh full-ladder compile costs at least three (exact ILP, relaxed
///   ILP, heuristic) — the ≥3× reduction in
///   [`schedule::search_invocations`] per fresh compile.
/// * Semantics: the beam artifact's outputs are byte-identical to the
///   exact-path artifact's for the same job, and its schedule passed
///   the full static verifier inside the ladder (`verify_rung` gates
///   every shipped rung).
#[test]
fn beam_is_near_exact_and_prunes_search_on_the_whole_suite() {
    let _g = counter_lock();
    let num_sms = 4;
    for b in streambench::suite() {
        let graph = b.spec.flatten().expect("benchmark flattens");

        let before = schedule::search_invocations();
        let beam = beam_pipeline(num_sms).compile(&graph).unwrap();
        let beam_cost = schedule::search_invocations() - before;

        let before = schedule::search_invocations();
        let ladder = ladder_pipeline(num_sms).compile(&graph).unwrap();
        let ladder_cost = schedule::search_invocations() - before;

        assert_eq!(
            beam.report.shipped,
            LadderRung::Beam,
            "{}: beam rung must ship, got {}",
            b.name,
            beam.report
        );
        assert!(
            !beam.report.degraded(),
            "{}: beam is not a degradation",
            b.name
        );

        let report = &beam.compiled.report;
        let bound = (report.lower_bound as f64 * 1.05).ceil() as u64;
        assert!(
            report.final_ii <= bound,
            "{}: beam II {} exceeds 1.05 x lower bound {} (= {})",
            b.name,
            report.final_ii,
            report.lower_bound,
            bound
        );

        assert!(
            ladder_cost >= 3 * beam_cost,
            "{}: ladder cost {ladder_cost} searches, beam cost {beam_cost} — \
             expected at least a 3x reduction",
            b.name
        );
        assert_eq!(beam_cost, 1, "{}: a beam compile is one search", b.name);

        assert_eq!(
            run(&beam, 2, b.input),
            run(&ladder, 2, b.input),
            "{}: beam schedule changed the program's outputs",
            b.name
        );
    }
}

/// Per-artifact accounting: the beam artifact reports one search paid;
/// the ladder baseline reports two (exact paid-and-failed, heuristic
/// paid-and-shipped) with its zero-budget relaxed rung excluded as
/// `SkippedBudget` — the counter `ServeReport`/`FleetReport` aggregate
/// per tenant and per device.
#[test]
fn degradation_report_counts_paid_searches() {
    let _g = counter_lock();
    let graph = streambench::suite()[0].spec.flatten().unwrap();
    let beam = beam_pipeline(4).compile(&graph).unwrap();
    assert_eq!(beam.report.search_invocations(), 1);
    let ladder = ladder_pipeline(4).compile(&graph).unwrap();
    assert_eq!(
        ladder.report.search_invocations(),
        2,
        "exact (failed) + heuristic (shipped) are paid; the zero-budget \
         relaxed rung is not: {}",
        ladder.report
    );
}

/// Warm-vs-cold serving differential on a small engine: warming the
/// cache first must lift the hit rate, zero out every tenant's
/// `search_invocations`, and leave every job's outputs byte-identical.
#[test]
fn warm_started_serving_hits_where_cold_misses() {
    let _g = counter_lock();
    let opts = || ServeOptions {
        device: gpusim::DeviceConfig {
            num_sms: 4,
            ..gpusim::DeviceConfig::gts512()
        },
        ..ServeOptions::default()
    };
    let suite = streambench::suite();
    let tenants = &suite[..3];
    let mut trace = Vec::new();
    let mut now = 0.0;
    for _round in 0..2 {
        for b in tenants {
            trace.push((
                Job {
                    tenant: b.name.to_string(),
                    graph: b.spec.flatten().unwrap(),
                    input: b.input,
                    iterations: 1,
                    qos: QosClass::Batch,
                },
                now,
            ));
            now += 0.1;
        }
        now += 1.0;
    }
    let graphs: Vec<_> = tenants.iter().map(|b| b.spec.flatten().unwrap()).collect();

    let serve = |warm: bool| {
        let mut engine = EventEngine::new(opts());
        if warm {
            let report = engine.warm(&graphs, 1);
            assert_eq!(report.failed, 0, "warming must compile every point");
            assert!(report.compiled > 0);
        }
        let verdicts = engine.serve_trace(&trace).unwrap();
        let outputs: Vec<Vec<Scalar>> = verdicts
            .iter()
            .map(|v| match v {
                swpipe::serve::Verdict::Completed(r) => r.outputs.clone(),
                swpipe::serve::Verdict::Rejected { .. } => panic!("unexpected rejection"),
            })
            .collect();
        (engine.report(), outputs)
    };

    let (cold, cold_outputs) = serve(false);
    let (warm, warm_outputs) = serve(true);

    assert_eq!(
        cold_outputs, warm_outputs,
        "cache warming must not change any job's outputs"
    );
    assert!(
        warm.cache_hit_rate > cold.cache_hit_rate,
        "warm hit rate {} must beat cold {}",
        warm.cache_hit_rate,
        cold.cache_hit_rate
    );
    assert_eq!(warm.cache.misses, 0, "a fully warmed trace never misses");

    let paid = |r: &swpipe::serve::ServeReport| -> u64 {
        r.tenants.iter().map(|t| t.search_invocations).sum()
    };
    assert!(paid(&cold) > 0, "cold serving pays for searches");
    assert_eq!(paid(&warm), 0, "warm serving pays for none");
}

/// Fleet-store warming: pre-compiling into the replicated artifact
/// store takes every scheduler search off the serving path
/// (`FleetReport::search_invocations` drops to zero) without changing
/// job outcomes.
#[test]
fn fleet_store_warming_zeroes_serving_search_invocations() {
    let _g = counter_lock();
    use swpipe::fleet::{FleetEngine, FleetOptions, FleetVerdict};
    let suite = streambench::suite();
    let tenants = &suite[..2];
    let base = ServeOptions {
        device: gpusim::DeviceConfig {
            num_sms: 4,
            ..gpusim::DeviceConfig::gts512()
        },
        ..ServeOptions::default()
    };
    let opts = || FleetOptions {
        devices: 2,
        base: base.clone(),
        ..FleetOptions::default()
    };
    let mut trace = Vec::new();
    for (i, b) in tenants.iter().enumerate() {
        trace.push((
            Job {
                tenant: b.name.to_string(),
                graph: b.spec.flatten().unwrap(),
                input: b.input,
                iterations: 1,
                qos: QosClass::Batch,
            },
            i as f64 * 0.1,
        ));
    }
    let graphs: Vec<_> = tenants.iter().map(|b| b.spec.flatten().unwrap()).collect();

    let mut cold = FleetEngine::new(opts());
    let cold_verdicts = cold.run(&trace).unwrap();
    let cold_report = cold.report();
    assert!(cold_report.search_invocations > 0);

    let mut warm = FleetEngine::new(opts());
    let warm_report = warm.warm(&graphs, 1);
    assert_eq!(warm_report.failed, 0);
    assert!(warm_report.compiled > 0);
    let warm_verdicts = warm.run(&trace).unwrap();
    let report = warm.report();
    assert_eq!(
        report.search_invocations, 0,
        "a fully warmed store pays for no serving-path searches"
    );
    assert_eq!(report.jobs_lost, 0);

    for (c, w) in cold_verdicts.iter().zip(&warm_verdicts) {
        match (c, w) {
            (FleetVerdict::Completed(c), FleetVerdict::Completed(w)) => {
                assert_eq!(c.outputs, w.outputs, "warming changed a job's outputs");
            }
            _ => panic!("both runs must complete every job"),
        }
    }
}

/// The committed dataset and model artifacts are exact replays of the
/// deterministic generator and trainer — the property the CI `learn`
/// job enforces on every push.
#[test]
fn committed_learn_artifacts_are_byte_stable() {
    let _g = counter_lock();
    let dataset = stream_gpu::learn_gen::gen(true);
    let committed = std::fs::read_to_string("datasets/learn_small.json")
        .expect("committed dataset exists (cargo run --bin learn_gen -- --small)");
    assert_eq!(
        dataset.to_json(),
        committed,
        "datasets/learn_small.json is not a fresh regeneration; \
         rerun: cargo run --release --bin learn_gen -- --small"
    );

    let model = stream_gpu::learn_train::train_canonical(&dataset).expect("trains");
    let committed = std::fs::read_to_string("models/cost_model.json").expect("committed model");
    assert_eq!(
        model.to_json(),
        committed,
        "models/cost_model.json is not a fresh retrain; \
         rerun: cargo run --release --bin learn_train"
    );
    assert_eq!(model.digest(), committed_model().digest());
}

/// Installing a cost model changes every cache key (the model digest is
/// part of the compile options), and two handles over byte-identical
/// models agree — reloading the committed artifact does not invalidate
/// a warmed cache.
#[test]
fn cost_model_identity_is_digest_stable() {
    let _g = counter_lock();
    let a = CostModelHandle::new(committed_model());
    let b = CostModelHandle::new(committed_model());
    assert_eq!(a, b);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));

    let graph = streambench::suite()[0].spec.flatten().unwrap();
    let mut with = PipelineOptions {
        compile: CompileOptions::small_test(),
        ..PipelineOptions::default()
    };
    let without = swpipe::serve::cache_key(&graph, &with);
    with.compile.search.cost_model = Some(a);
    assert_ne!(
        swpipe::serve::cache_key(&graph, &with),
        without,
        "installing a model must change the cache key"
    );
}

/// The beam honors `FaultPolicy::TailLatency`'s schedule reserve like
/// the exact rungs do: the reserved II survives into the artifact and
/// its run options.
#[test]
fn beam_respects_fault_policy_reserve() {
    let _g = counter_lock();
    let graph = streambench::suite()[0].spec.flatten().unwrap();
    let mut compile = CompileOptions::small_test();
    compile.search.cost_model = Some(handle());
    let rc = ResilientPipeline::new(PipelineOptions {
        compile,
        policy: FaultPolicy::TailLatency,
        fault_plan: Some(gpusim::FaultPlan::new(7).with_launch_failures(50)),
        ..PipelineOptions::default()
    })
    .compile(&graph)
    .unwrap();
    assert_eq!(rc.report.shipped, LadderRung::Beam);
    assert!(
        rc.compiled.report.fault_reserve > 0,
        "TailLatency under a fault plan must reserve schedule headroom"
    );
    assert_eq!(
        rc.compiled.report.final_ii,
        rc.compiled.report.nominal_ii + rc.compiled.report.fault_reserve
    );
}
