//! Cross-crate end-to-end tests: every benchmark in the suite is compiled
//! through the full paper pipeline (profile → select → schedule → buffer
//! plan → codegen) at a reduced grid and executed *functionally* on the
//! simulated GPU, then checked bit-for-bit against the single-threaded CPU
//! reference executor. This is the strongest guarantee in the repository:
//! scheduling, buffer layout, initialization seeding, and the
//! warp-synchronous interpreter must all agree with the sequential
//! semantics for every algorithm in the suite.

use streamir::cpu::{self, CpuCostModel};
use streamir::ir::Scalar;
use swpipe::exec::{self, CompileOptions, Scheme};

/// Compiles and runs `iters` iterations under `scheme`, returning the GPU
/// output stream and the CPU output stream covering it.
fn run_both(b: &streambench::Benchmark, scheme: Scheme, iters: u64) -> (Vec<Scalar>, Vec<Scalar>) {
    let graph = b
        .spec
        .flatten()
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let compiled = exec::compile(&graph, &CompileOptions::small_test())
        .unwrap_or_else(|e| panic!("{}: compile: {e}", b.name));

    let n_input = exec::required_input(&compiled, iters);
    let steady = streamir::sdf::solve(&graph).unwrap();
    let cpu_per_iter = steady.input_tokens_per_iteration(&graph).max(1);
    let input = (b.input)((n_input + 2 * cpu_per_iter + 64) as usize);

    let gpu = exec::execute(&compiled, scheme, iters, &input[..n_input as usize])
        .unwrap_or_else(|e| panic!("{}: execute: {e}", b.name));

    let cpu_init = steady.input_tokens_for_init(&graph);
    let cpu_iters = (n_input.saturating_sub(cpu_init)).div_ceil(cpu_per_iter) + 1;
    let cpu = cpu::run(&graph, &steady, cpu_iters, &input, &CpuCostModel::default())
        .unwrap_or_else(|e| panic!("{}: cpu: {e}", b.name));
    (gpu.outputs, cpu.outputs)
}

fn assert_bit_exact(b: &streambench::Benchmark, scheme: Scheme, iters: u64) {
    let (gpu, cpu) = run_both(b, scheme, iters);
    assert!(!gpu.is_empty(), "{}: no GPU output", b.name);
    assert!(
        gpu.len() <= cpu.len(),
        "{}: CPU run must cover GPU emission",
        b.name
    );
    assert_eq!(
        gpu[..],
        cpu[..gpu.len()],
        "{}: GPU and CPU streams must agree bit-for-bit",
        b.name
    );
}

macro_rules! e2e {
    ($test:ident, $name:expr, $scheme:expr, $iters:expr) => {
        #[test]
        fn $test() {
            let b = streambench::by_name($name).expect("known benchmark");
            assert_bit_exact(&b, $scheme, $iters);
        }
    };
}

e2e!(bitonic_swp, "Bitonic", Scheme::Swp { coarsening: 2 }, 4);
e2e!(
    bitonic_rec_swp,
    "BitonicRec",
    Scheme::Swp { coarsening: 2 },
    4
);
e2e!(dct_swp, "DCT", Scheme::Swp { coarsening: 2 }, 4);
e2e!(des_swp, "DES", Scheme::Swp { coarsening: 2 }, 4);
e2e!(fft_swp, "FFT", Scheme::Swp { coarsening: 2 }, 4);
e2e!(
    filterbank_swp,
    "Filterbank",
    Scheme::Swp { coarsening: 2 },
    4
);
e2e!(fmradio_swp, "FMRadio", Scheme::Swp { coarsening: 2 }, 4);
e2e!(matmult_swp, "MatrixMult", Scheme::Swp { coarsening: 2 }, 4);

e2e!(des_swpnc, "DES", Scheme::SwpNc { coarsening: 2 }, 4);
e2e!(fft_swpnc, "FFT", Scheme::SwpNc { coarsening: 2 }, 4);
e2e!(
    filterbank_serial,
    "Filterbank",
    Scheme::Serial { batch: 2 },
    4
);
e2e!(dct_serial, "DCT", Scheme::Serial { batch: 2 }, 4);
e2e!(fft_swp_raw, "FFT", Scheme::SwpRaw { coarsening: 2 }, 4);

/// The DES stream must actually encrypt: check the GPU output against the
/// standalone reference cipher (not just the CPU executor).
#[test]
fn des_gpu_output_is_real_des() {
    let b = streambench::by_name("DES").unwrap();
    let graph = b.spec.flatten().unwrap();
    let compiled = exec::compile(&graph, &CompileOptions::small_test()).unwrap();
    let iters = 4;
    let n_input = exec::required_input(&compiled, iters);
    let input = (b.input)(n_input as usize);
    let run = exec::execute(&compiled, Scheme::Swp { coarsening: 2 }, iters, &input).unwrap();
    let plain: Vec<i32> = input.iter().map(|s| s.as_i32()).collect();
    let got: Vec<i32> = run.outputs.iter().map(|s| s.as_i32()).collect();
    let expect = streambench::des::reference(&plain[..got.len()]);
    assert_eq!(got, expect);
}

/// Scaled measurement must agree with full execution on the overlapping
/// window's statistics-derived time for a case where both paths run.
#[test]
fn measure_matches_execute_when_window_covers_run() {
    let b = streambench::by_name("FFT").unwrap();
    let graph = b.spec.flatten().unwrap();
    let compiled = exec::compile(&graph, &CompileOptions::small_test()).unwrap();
    let iters = 8; // small: kernel_iters <= stages + 4, so measure() falls
                   // back to exact simulation
    let n_input = exec::required_input(&compiled, iters);
    let input = (b.input)(n_input as usize);
    let full = exec::execute(&compiled, Scheme::Swp { coarsening: 2 }, iters, &input).unwrap();
    let meas = exec::measure(&compiled, Scheme::Swp { coarsening: 2 }, iters, &input).unwrap();
    assert!((full.time_secs - meas.time_secs).abs() < 1e-12);
    assert_eq!(full.stats.mem_transactions, meas.stats.mem_transactions);
}

/// The scaled measurement path (fill + verified steady window + drain,
/// scaled) must agree *exactly* with full simulation whenever control flow
/// is data-independent — same cycles, same transaction totals.
#[test]
fn scaled_measurement_equals_full_simulation() {
    let b = streambench::by_name("FFT").unwrap();
    let graph = b.spec.flatten().unwrap();
    let compiled = exec::compile(&graph, &CompileOptions::small_test()).unwrap();
    // Choose iterations large enough to trigger scaling (kernel_iters >
    // stages + 4) but small enough to fully simulate.
    let stages = compiled.schedule.max_stage();
    let iters = (stages + 16).next_multiple_of(2);
    let n_input = exec::required_input(&compiled, iters);
    let input = (b.input)(n_input as usize);
    let full = exec::execute(&compiled, Scheme::Swp { coarsening: 1 }, iters, &input).unwrap();
    let meas = exec::measure(&compiled, Scheme::Swp { coarsening: 1 }, iters, &input).unwrap();
    assert!(meas.outputs.is_empty(), "measure skips output assembly");
    assert_eq!(full.launches, meas.launches);
    assert_eq!(full.stats.warp_instructions, meas.stats.warp_instructions);
    assert_eq!(full.stats.mem_transactions, meas.stats.mem_transactions);
    let rel = (full.time_secs - meas.time_secs).abs() / full.time_secs;
    assert!(
        rel < 1e-9,
        "times must agree: {} vs {}",
        full.time_secs,
        meas.time_secs
    );
}

/// Buffer requirements (Table II machinery) must grow with coarsening and
/// stay layout-independent.
#[test]
fn buffer_plans_scale_with_coarsening() {
    use swpipe::plan::{self, LayoutKind};
    let b = streambench::by_name("FFT").unwrap();
    let graph = b.spec.flatten().unwrap();
    let compiled = exec::compile(&graph, &CompileOptions::small_test()).unwrap();
    let bytes = |c: u32, kind| {
        plan::plan(
            &compiled.graph,
            &compiled.ig,
            Some(&compiled.schedule),
            c,
            kind,
        )
        .total_bytes()
    };
    assert!(bytes(8, LayoutKind::Optimized) > bytes(1, LayoutKind::Optimized));
    assert_eq!(
        bytes(8, LayoutKind::Optimized),
        bytes(8, LayoutKind::Sequential),
        "layout permutes placement, not size"
    );
}
