//! Fleet acceptance tests (ISSUE 7):
//!
//! * **Differential failover** — a mid-run device loss over the full
//!   benchmark suite completes every job with outputs byte-identical
//!   to a fault-free single-device reference, with the failover
//!   overhead billed into the disjoint `failover_cycles` component and
//!   the billing invariant intact;
//! * **Hedged dispatch** — a hedge backup that wins bills the loser's
//!   burn into the winner's disjoint `hedge_cycles` without changing a
//!   single output byte;
//! * **Completion-or-rejection** — rolling kill storms lose no jobs:
//!   every submission completes or is rejected, even when no usable
//!   failover target remains;
//! * **Determinism** — same-seed fleet chaos replays to identical
//!   router decision logs, reports, and output bytes, property-tested
//!   over random traces × device counts ∈ {2, 4, 8};
//! * **Replication dividend** — the cross-device artifact store's hit
//!   rate beats a solo device's disk tier on the same trace.

use proptest::prelude::*;
use streamir::graph::{FilterSpec, FlatGraph, StreamSpec};
use streamir::ir::{ElemTy, Expr, FnBuilder, Scalar};

use gpusim::{DeviceFaultPlan, DeviceId};
use stream_gpu::fleet_bench;
use swpipe::fleet::{FleetEngine, FleetOptions, FleetStorm, FleetVerdict, HedgeOptions, Router};
use swpipe::serve::{Job, QosClass, ServeOptions};

fn map_filter(name: &str, k: i32) -> StreamSpec {
    let mut b = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
    let x = b.local(ElemTy::I32);
    b.pop_into(0, x);
    b.push(0, Expr::local(x).mul(Expr::i32(k)));
    StreamSpec::filter(FilterSpec::new(name, b.build().unwrap()))
}

fn chain(k: i32) -> FlatGraph {
    StreamSpec::pipeline(vec![map_filter("f", k), map_filter("g", k + 1)])
        .flatten()
        .unwrap()
}

fn tiny_job(tenant: &str, k: i32, iterations: u64, qos: QosClass) -> Job {
    Job {
        tenant: tenant.to_string(),
        graph: chain(k),
        input: |n| (0..n).map(|i| Scalar::I32(i as i32)).collect(),
        iterations,
        qos,
    }
}

/// A three-tenant round-robin trace of tiny stateless jobs.
fn tiny_trace(jobs: usize, iterations: u64) -> Vec<(Job, f64)> {
    (0..jobs)
        .map(|i| {
            let (name, k) = match i % 3 {
                0 => ("a", 3),
                1 => ("b", 7),
                _ => ("c", 11),
            };
            let qos = if i % 3 == 1 {
                QosClass::Interactive
            } else {
                QosClass::Batch
            };
            (tiny_job(name, k, iterations, qos), 0.2 * i as f64)
        })
        .collect()
}

fn no_hedge(opts: FleetOptions) -> FleetOptions {
    FleetOptions {
        hedge: HedgeOptions {
            enabled: false,
            ..HedgeOptions::default()
        },
        ..opts
    }
}

fn outputs_of(v: &FleetVerdict) -> &[Scalar] {
    match v {
        FleetVerdict::Completed(r) => &r.outputs,
        FleetVerdict::Rejected { .. } => panic!("expected a completed job"),
    }
}

/// ISSUE 7 acceptance: for the full benchmark suite, a mid-run device
/// loss completes every job with per-job outputs byte-identical to a
/// fault-free single-device reference, the failover overhead billed
/// into the disjoint `failover_cycles` component.
#[test]
fn device_loss_failover_matches_fault_free_reference_on_the_suite() {
    let trace = fleet_bench::fleet_trace(1, 4);

    // Fault-free single-device reference.
    let (_, _, reference) = fleet_bench::run_fleet(no_hedge(fleet_bench::solo_options()), &trace);

    // Probe a fault-free 4-device fleet to find a job's execution
    // window, then kill its device mid-execution so the failover has
    // real state to ship and launches to replay.
    let probe_opts = no_hedge(fleet_bench::fleet_options(4));
    let (_, _, probe) = fleet_bench::run_fleet(probe_opts.clone(), &trace);
    let (victim_idx, victim_dev, kill_at) = probe
        .iter()
        .enumerate()
        .filter_map(|(i, v)| match v {
            FleetVerdict::Completed(r) => {
                let window = r.finish_secs - r.start_secs;
                (window > 0.0).then_some((i, r.device, r.start_secs + 0.5 * window, window))
            }
            FleetVerdict::Rejected { .. } => None,
        })
        .max_by(|a, b| a.3.total_cmp(&b.3))
        .map(|(i, d, t, _)| (i, d, t))
        .expect("some job has a positive execution window");

    let disturbed_opts = FleetOptions {
        device_faults: DeviceFaultPlan::new().with_loss(DeviceId(victim_dev), kill_at),
        ..probe_opts
    };
    let mut engine = FleetEngine::new(disturbed_opts);
    let verdicts = engine.run(&trace).expect("disturbed trace serves");
    let report = engine.report();

    assert!(
        report.failovers >= 1,
        "the kill must catch an in-flight job"
    );
    assert_eq!(report.jobs_lost, 0);
    assert!(report.failover_cycles > 0, "shipped state is never free");

    let mut saw_failover = false;
    for (i, (v, r)) in verdicts.iter().zip(&reference).enumerate() {
        let (FleetVerdict::Completed(d), FleetVerdict::Completed(_)) = (v, r) else {
            panic!("job {i}: both runs must complete every job");
        };
        assert_eq!(
            d.outputs,
            outputs_of(r),
            "job {i} ({}): outputs diverge from the fault-free reference",
            trace[i].0.tenant
        );
        d.stats
            .check_billing()
            .unwrap_or_else(|e| panic!("job {i}: {e}"));
        if d.failed_over > 0 {
            saw_failover = true;
            assert_ne!(d.device, victim_dev, "failed-over job left the dead device");
            assert!(
                d.stats.failover_cycles > 0.0,
                "job {i}: failover billed nothing"
            );
        }
    }
    assert!(saw_failover, "no per-job failover recorded");
    let FleetVerdict::Completed(d) = &verdicts[victim_idx] else {
        panic!("targeted job must complete");
    };
    assert!(
        d.failed_over >= 1,
        "the targeted job was mid-execution at the kill"
    );
}

/// A hedge backup that wins bills the loser's burned cycles into the
/// winner's disjoint `hedge_cycles` — and changes no output byte
/// relative to an unhedged run.
#[test]
fn hedged_dispatch_bills_loser_burn_into_winner() {
    // One Interactive tenant, two devices: the first job pays the
    // 0.5 s compile penalty, so the p99-derived hedge delay (floored at
    // 0.25 s) arms a backup that fetches from the store and wins.
    let trace: Vec<(Job, f64)> = (0..3)
        .map(|i| {
            (
                tiny_job("hot", 5, 2, QosClass::Interactive),
                2.0 * f64::from(i),
            )
        })
        .collect();
    let base = FleetOptions {
        devices: 2,
        base: ServeOptions::default(),
        replication: 2,
        ..FleetOptions::default()
    };

    let (unhedged_report, _, unhedged) = fleet_bench::run_fleet(no_hedge(base.clone()), &trace);
    assert_eq!(unhedged_report.hedges, 0);

    let mut engine = FleetEngine::new(base);
    let verdicts = engine.run(&trace).expect("hedged trace serves");
    let report = engine.report();

    assert!(report.hedges >= 1, "the cold compile must arm a hedge");
    assert!(
        report.hedge_wins >= 1,
        "the backup skips the compile and wins"
    );
    assert!(report.hedge_cycles > 0, "the loser's burn is billed");

    let mut saw_winning_hedge = false;
    for (i, (v, r)) in verdicts.iter().zip(&unhedged).enumerate() {
        let FleetVerdict::Completed(d) = v else {
            panic!("job {i}: completes");
        };
        assert_eq!(d.outputs, outputs_of(r), "job {i}: hedging changed outputs");
        d.stats
            .check_billing()
            .unwrap_or_else(|e| panic!("job {i}: {e}"));
        if d.hedged && d.hedge_won {
            saw_winning_hedge = true;
            assert!(d.stats.hedge_cycles > 0.0, "job {i}: winner bills the burn");
        }
    }
    assert!(saw_winning_hedge);
}

/// Rolling device kills never lose a job: every submission completes
/// or is rejected, and the report's conservation counters agree.
#[test]
fn rolling_kill_storm_loses_no_jobs() {
    let trace = tiny_trace(12, 2);
    let storm = FleetStorm {
        seed: 0xDEAD_BEEF,
        kills: 3,
        kill_start_secs: 0.3,
        kill_every_secs: 0.5,
        min_alive: 1,
        partitions: 1,
        partition_start_secs: 0.9,
        partition_every_secs: 1.0,
        partition_heal_secs: 0.4,
        rack: None,
    };
    let opts = FleetOptions {
        devices: 4,
        device_faults: storm.device_fault_plan(4),
        ..FleetOptions::default()
    };
    let mut engine = FleetEngine::new(opts);
    let verdicts = engine.run(&trace).expect("storm trace serves");
    let report = engine.report();

    assert_eq!(verdicts.len(), trace.len());
    assert_eq!(report.jobs_submitted, trace.len() as u64);
    assert_eq!(report.jobs_lost, 0, "completion-or-rejection violated");
    assert_eq!(
        report.jobs_completed + report.jobs_rejected,
        report.jobs_submitted
    );
    assert!(report.devices_alive >= 1);
}

/// When a device dies and nothing usable remains (the only other
/// device is partitioned), in-flight jobs are *rejected* — surfaced to
/// the caller with a retry hint — never silently dropped.
#[test]
fn loss_with_no_usable_target_rejects_instead_of_losing() {
    let tenant = "solo-tenant";
    let home = Router::new(2).home(tenant).index();
    let other = 1 - home;
    let trace = vec![(tiny_job(tenant, 3, 2, QosClass::Batch), 0.0)];
    // Partition the alternate first, then kill the home while the job
    // is still paying its compile penalty.
    let plan = DeviceFaultPlan::new()
        .with_partition(DeviceId(other), 0.1, 60.0)
        .with_loss(DeviceId(home), 0.2);
    let opts = no_hedge(FleetOptions {
        devices: 2,
        device_faults: plan,
        ..FleetOptions::default()
    });
    let mut engine = FleetEngine::new(opts);
    let verdicts = engine.run(&trace).expect("trace serves");
    let report = engine.report();

    let FleetVerdict::Rejected { retry_after_secs } = &verdicts[0] else {
        panic!("the abandoned job must surface as a rejection");
    };
    assert!(
        *retry_after_secs > 0.0,
        "the heal hint points at the partition"
    );
    assert_eq!(report.jobs_rejected, 1);
    assert_eq!(report.jobs_lost, 0);
    assert!(
        report.router_decisions > 0 && engine.router_log().iter().any(|d| d.action == "abandon"),
        "the abandon is logged"
    );
}

/// The replication dividend: after a device kill forces a tenant off
/// its home, an R = 2 store serves the rerouted job from a surviving
/// replica while an R = 1 store has lost its only copy and must
/// recompile. (The full-suite hit-rate comparison against a solo disk
/// tier lives in `fleet_bench::run_bench`, which CI runs in release.)
#[test]
fn replication_turns_post_kill_reroutes_into_hits() {
    let tenant = "a";
    let home = Router::new(2).home(tenant).index();
    // One job compiles at t = 0 on the home; the home dies while the
    // fleet is idle; a content-identical job arrives after the kill
    // and is rerouted to the survivor.
    let trace = vec![
        (tiny_job(tenant, 3, 2, QosClass::Batch), 0.0),
        (tiny_job(tenant, 3, 2, QosClass::Batch), 2.0),
    ];
    let plan = DeviceFaultPlan::new().with_loss(DeviceId(home), 1.0);

    let run = |replication: u32| {
        let opts = no_hedge(FleetOptions {
            devices: 2,
            replication,
            device_faults: plan.clone(),
            ..FleetOptions::default()
        });
        fleet_bench::run_fleet(opts, &trace)
    };
    let (r1, _, _) = run(1);
    let (r2, _, v2) = run(2);

    assert_eq!(
        r1.store.misses, 2,
        "R = 1: the kill destroyed the only replica"
    );
    assert_eq!(r1.store.entries_lost, 1);
    assert_eq!(
        r2.store.misses, 1,
        "R = 2: the rerouted job hits the survivor"
    );
    assert_eq!(r2.store.entries_lost, 0);
    assert!(r2.store.hit_rate() > r1.store.hit_rate());
    let FleetVerdict::Completed(second) = &v2[1] else {
        panic!("rerouted job completes");
    };
    assert!(second.rerouted, "home is dead, so the job was rerouted");
    assert_ne!(second.device, home);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Same seed, same storm, same fleet: two runs replay to identical
    /// router decision logs, identical serialized reports, and
    /// identical output bytes — across random traces and device counts
    /// ∈ {2, 4, 8}.
    #[test]
    fn same_seed_fleet_chaos_replays_identically(
        seed in 0u64..1_000_000,
        di in 0usize..3,
        extra in 0usize..5,
    ) {
        let devices = [2u32, 4, 8][di];
        let trace = tiny_trace(6 + extra, 2);
        let storm = FleetStorm {
            seed,
            kills: 2,
            min_alive: 1,
            partitions: 2,
            ..FleetStorm::default()
        };
        let opts = FleetOptions {
            devices,
            device_faults: storm.device_fault_plan(devices),
            ..FleetOptions::default()
        };

        let mut a = FleetEngine::new(opts.clone());
        let va = a.run(&trace).expect("first run serves");
        let mut b = FleetEngine::new(opts);
        let vb = b.run(&trace).expect("second run serves");

        prop_assert_eq!(
            serde_json::to_string(&a.router_log().to_vec()),
            serde_json::to_string(&b.router_log().to_vec()),
            "router decision logs diverge"
        );
        prop_assert_eq!(
            serde_json::to_string(&a.report()),
            serde_json::to_string(&b.report()),
            "reports diverge"
        );
        for (i, (x, y)) in va.iter().zip(&vb).enumerate() {
            match (x, y) {
                (FleetVerdict::Completed(l), FleetVerdict::Completed(r)) => {
                    prop_assert_eq!(&l.outputs, &r.outputs, "job {} outputs diverge", i);
                    prop_assert_eq!(
                        l.finish_secs.to_bits(),
                        r.finish_secs.to_bits(),
                        "job {} finish diverges",
                        i
                    );
                }
                (
                    FleetVerdict::Rejected { retry_after_secs: l },
                    FleetVerdict::Rejected { retry_after_secs: r },
                ) => prop_assert_eq!(l.to_bits(), r.to_bits(), "job {} hint diverges", i),
                _ => prop_assert!(false, "job {} verdict kind diverges", i),
            }
        }
    }
}
