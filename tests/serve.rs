//! Integration tests for the multi-tenant serving runtime: spatial
//! isolation (sliced runs are byte- and cycle-identical to solo runs),
//! cache hits that never invoke the scheduler, bounded admission under
//! saturating arrivals, and the `BENCH_serve.json` serving report.

use std::sync::{Mutex, MutexGuard, PoisonError};

use proptest::prelude::*;
use streamir::ir::Scalar;
use swpipe::exec::{self, required_input, CompileOptions};
use swpipe::pipeline::{PipelineOptions, ResilientPipeline};
use swpipe::schedule;
use swpipe::serve::{
    cache_key, CacheOptions, CompilationCache, Job, QosClass, ServeOptions, Server, Verdict,
};

/// [`schedule::search_invocations`] is process-global and the test
/// harness is multi-threaded, so every test that compiles takes this
/// lock — otherwise a concurrent compile would race the zero-scheduler
/// assertion of the cache-hit tests.
static COMPILE_LOCK: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    COMPILE_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The pipeline options the server compiles a tenant's job under, for
/// solo reference compilations: same device family at the slice width,
/// same profile grid, search options, budgets, and policy.
fn solo_options(num_sms: u32, qos: QosClass) -> PipelineOptions {
    let serve = ServeOptions::default();
    PipelineOptions {
        compile: CompileOptions {
            device: gpusim::DeviceConfig {
                num_sms,
                ..serve.device
            },
            timing: serve.timing,
            profile: serve.profile,
            search: serve.search,
        },
        budgets: serve.budgets,
        fault_plan: None,
        policy: qos.policy(),
        graph_dispatch: false,
    }
}

fn bench_job(name: &str, iterations: u64) -> Job {
    let b = streambench::by_name(name).expect("benchmark exists");
    Job {
        tenant: name.to_string(),
        graph: b.spec.flatten().expect("benchmark flattens"),
        input: b.input,
        iterations,
        qos: QosClass::Batch,
    }
}

fn completed(v: Verdict) -> swpipe::serve::JobResult {
    match v {
        Verdict::Completed(r) => *r,
        Verdict::Rejected { retry_after_secs } => {
            panic!("unexpected rejection (retry in {retry_after_secs}s)")
        }
    }
}

/// Acceptance (a): two tenants co-scheduled on disjoint SM slices get
/// byte-identical outputs — and, for the cache-hit job whose latency is
/// pure execution time, cycle-identical times — to solo runs on a
/// device of their slice's width.
#[test]
fn sliced_tenants_match_solo_runs() {
    let _g = guard();
    let iters = 3;
    let mut server = Server::new(ServeOptions::default());
    let bitonic = bench_job("Bitonic", iters);
    let fft = bench_job("FFT", iters);

    // Admit both tenants (the partition recuts as each joins), then
    // measure at the settled widths.
    completed(server.submit(&bitonic, 0.0).unwrap());
    completed(server.submit(&fft, 0.1).unwrap());
    let a = completed(server.submit(&bitonic, 1.0).unwrap());
    let b = completed(server.submit(&fft, 1.1).unwrap());

    // The slices are disjoint and cover distinct SM ranges.
    let (sa, sb) = (a.slice, b.slice);
    assert_eq!(sa.num_sms, 8);
    assert_eq!(sb.num_sms, 8);
    assert!(
        sa.base_sm + sa.num_sms <= sb.base_sm || sb.base_sm + sb.num_sms <= sa.base_sm,
        "slices overlap: {sa:?} vs {sb:?}"
    );

    // Repeat jobs on the same arrival cadence (an out-of-cadence gap
    // would legitimately shift the rate estimate and recut the
    // partition): same width, same options — a cache hit with no
    // compile penalty.
    let a_hit = completed(server.submit(&bitonic, 2.0).unwrap());
    let b_hit = completed(server.submit(&fft, 2.1).unwrap());

    // Solo references at each tenant's slice width.
    for (job, result, hit) in [(&bitonic, &a, &a_hit), (&fft, &b, &b_hit)] {
        let opts = solo_options(result.slice.num_sms, job.qos);
        let rc = ResilientPipeline::new(opts).compile(&job.graph).unwrap();
        let input: Vec<Scalar> = (job.input)(required_input(&rc.compiled, iters) as usize);
        let solo =
            exec::execute_with(&rc.compiled, rc.scheme, iters, &input, &rc.run_options).unwrap();
        assert_eq!(
            solo.outputs, result.outputs,
            "{}: sliced run diverged from the solo run",
            job.tenant
        );

        // A cache-hit job pays no compile penalty and the slice is idle,
        // so its whole latency is the modeled execution time — which must
        // equal the solo run's exactly (cycle identity, not approximation).
        assert!(hit.cache_hit, "{}: repeat job should hit", job.tenant);
        assert_eq!(
            hit.exec_secs, solo.time_secs,
            "{}: sliced timing diverged from the solo run",
            job.tenant
        );
        // The latency differs from the pure execution time only by
        // virtual-clock arithmetic rounding, never by queueing.
        assert!((hit.latency_secs - hit.exec_secs).abs() < 1e-9);
    }
}

/// Acceptance (b): a cache hit serves a verified artifact without a
/// single scheduler invocation.
#[test]
fn cache_hit_serves_without_invoking_the_scheduler() {
    let _g = guard();
    let mut server = Server::new(ServeOptions::default());
    let job = bench_job("DCT", 2);
    let first = completed(server.submit(&job, 0.0).unwrap());
    assert!(!first.cache_hit);

    let before = schedule::search_invocations();
    let second = completed(server.submit(&job, 5.0).unwrap());
    assert!(second.cache_hit);
    assert_eq!(
        schedule::search_invocations(),
        before,
        "a cache hit must not invoke the scheduler"
    );
    assert_eq!(second.outputs, first.outputs);
    assert_eq!(server.cache_stats().hits, 1);
    assert_eq!(server.cache_stats().misses, 1);
}

/// Acceptance (c): under saturating arrivals the queue stays bounded —
/// excess jobs are rejected with a finite retry-after hint and the
/// accepted jobs' tail latency stays finite.
#[test]
fn admission_bounds_the_queue_under_saturation() {
    let _g = guard();
    let mut server = Server::new(ServeOptions {
        max_queue: 4,
        ..ServeOptions::default()
    });
    let job = bench_job("Bitonic", 2);

    let mut accepted = 0u64;
    let mut rejected = 0u64;
    // Fifty simultaneous arrivals: none of the admitted jobs can finish
    // before the whole burst has been decided.
    for _ in 0..50 {
        match server.submit(&job, 0.0).unwrap() {
            Verdict::Completed(_) => accepted += 1,
            Verdict::Rejected { retry_after_secs } => {
                assert!(
                    retry_after_secs.is_finite() && retry_after_secs > 0.0,
                    "retry-after must be a positive finite hint, got {retry_after_secs}"
                );
                rejected += 1;
            }
        }
    }
    assert_eq!(
        accepted, 4,
        "the queue bound must cap simultaneous admissions"
    );
    assert_eq!(rejected, 46);

    let report = server.report();
    let t = &report.tenants[0];
    assert_eq!(t.jobs_accepted, 4);
    assert_eq!(t.jobs_rejected, 46);
    assert!(
        t.p99_latency_secs.is_finite(),
        "p99 must stay finite under saturation"
    );
}

/// Acceptance (d): the serving benchmark produces `BENCH_serve.json`
/// and it parses back with the expected shape.
#[test]
fn serve_bench_report_is_produced_and_parses() {
    let report = {
        let _g = guard();
        stream_gpu::serve_bench::run_trace(2, 1)
    };
    // Write to a scratch path: the committed BENCH_serve.json is the
    // verbatim output of the full serve_bench run and is drift-checked
    // against a fresh full run in CI, so a shortened test trace must
    // never overwrite it.
    let path = std::env::temp_dir().join("stream_gpu_test_BENCH_serve.json");
    let path = path.to_str().unwrap();
    stream_gpu::serve_bench::write_report(&report, path);
    let text = std::fs::read_to_string(path).unwrap();
    let v = serde_json::from_str(&text).expect("BENCH_serve.json parses");

    assert!(v.get("makespan_secs").and_then(|m| m.as_f64()).unwrap() > 0.0);
    assert!(v.get("cache_hit_rate").and_then(|m| m.as_f64()).is_some());
    let tenants = v.get("tenants").and_then(|t| t.as_array()).unwrap();
    assert_eq!(tenants.len(), 8, "one row per benchmark");
    for t in tenants {
        for key in [
            "throughput_tokens_per_sec",
            "p50_latency_secs",
            "p99_latency_secs",
            "slice_utilization",
            "retry_rate",
            "fault_overhead_share",
        ] {
            let x = t.get(key).and_then(|x| x.as_f64()).unwrap();
            assert!(x.is_finite(), "{key} must be finite");
        }
        assert!(t.get("slice").and_then(|s| s.get("num_sms")).is_some());
    }
}

/// Satellite: the cache key is a pure function of content — two
/// independently constructed copies of the same benchmark and options
/// hash identically (the disk-tier unit test covers reuse across cache
/// instances, i.e. across processes for a persisted directory).
#[test]
fn cache_key_is_construction_independent() {
    for name in ["Bitonic", "DES", "FMRadio"] {
        let g1 = streambench::by_name(name).unwrap().spec.flatten().unwrap();
        let g2 = streambench::by_name(name).unwrap().spec.flatten().unwrap();
        let o1 = solo_options(4, QosClass::Batch);
        let o2 = solo_options(4, QosClass::Batch);
        assert_eq!(cache_key(&g1, &o1), cache_key(&g2, &o2), "{name}");
        assert_ne!(
            cache_key(&g1, &o1),
            cache_key(&g1, &solo_options(4, QosClass::Interactive)),
            "{name}: QoS policy must split the key"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Satellite: over the benchmark suite, a cache-hit artifact's
    /// output is bit-identical to a fresh compile's.
    #[test]
    fn cache_hit_output_matches_fresh_compile(bench_idx in 0usize..8, iters in 1u64..3) {
        let _g = guard();
        let suite = streambench::suite();
        let b = &suite[bench_idx];
        let graph = b.spec.flatten().unwrap();
        let opts = solo_options(4, QosClass::Batch);

        let fresh = ResilientPipeline::new(opts.clone()).compile(&graph).unwrap();
        let mut cache = CompilationCache::new(CacheOptions::default());
        let (_, miss_hit) = cache.get_or_compile(&graph, &opts).unwrap();
        prop_assert!(!miss_hit);
        let (hit, was_hit) = cache.get_or_compile(&graph, &opts).unwrap();
        prop_assert!(was_hit);

        let input: Vec<Scalar> =
            (b.input)(required_input(&fresh.compiled, iters) as usize);
        let fresh_run =
            exec::execute_with(&fresh.compiled, fresh.scheme, iters, &input, &fresh.run_options)
                .unwrap();
        let hit_run =
            exec::execute_with(&hit.compiled, hit.scheme, iters, &input, &hit.run_options)
                .unwrap();
        prop_assert_eq!(
            &fresh_run.outputs, &hit_run.outputs,
            "{}: cache-hit output diverged from fresh compile", b.name
        );
        prop_assert_eq!(fresh_run.time_secs, hit_run.time_secs);
    }
}
