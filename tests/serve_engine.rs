//! Differential tests for the event-driven serving engine: the
//! discrete-event [`EventEngine`] must be observationally equivalent to
//! the eager [`Server`] — byte-identical per-job results and identical
//! report schedules over every benchmark — while adding what the eager
//! path cannot have: compile/execute overlap, deterministic handling of
//! out-of-order submission, and a bounded compile worker pool.
//!
//! Covered here:
//! * full-suite differential (all 8 StreamIt benchmarks × a seeded
//!   arrival trace, under a fault plan);
//! * property: random arrival traces serve deterministically across two
//!   same-seed engine runs, and the engine never invokes the scheduler
//!   more often than the eager path on the same trace;
//! * regression: a cold-compiling tenant must not delay a hot tenant's
//!   launch-finish virtual times, while the engine reports positive
//!   compile overlap;
//! * out-of-order submission equals the sorted trace (the EWMA
//!   recording fix);
//! * the `SWPIPE_FAULT_MATRIX` kinds stay differentially identical.

use std::sync::{Mutex, MutexGuard, PoisonError};

use gpusim::FaultPlan;
use proptest::prelude::*;
use streamir::graph::{FilterSpec, FlatGraph, StreamSpec};
use streamir::ir::{ElemTy, Expr, FnBuilder, Scalar};
use swpipe::schedule;
use swpipe::serve::{EventEngine, Job, QosClass, ServeOptions, ServeReport, Server, Verdict};

/// [`schedule::search_invocations`] is process-global and the engine's
/// compile workers increment it from their own threads, so every test
/// that counts scheduler invocations (or compiles at all) serializes on
/// this lock.
static COMPILE_LOCK: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    COMPILE_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn map_filter(name: &str, k: i32) -> StreamSpec {
    let mut b = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
    let x = b.local(ElemTy::I32);
    b.pop_into(0, x);
    b.push(0, Expr::local(x).mul(Expr::i32(k)));
    StreamSpec::filter(FilterSpec::new(name, b.build().unwrap()))
}

fn chain(k: i32) -> FlatGraph {
    StreamSpec::pipeline(vec![map_filter("f", k), map_filter("g", k + 1)])
        .flatten()
        .unwrap()
}

fn tiny_job(tenant: &str, k: i32, iterations: u64) -> Job {
    Job {
        tenant: tenant.to_string(),
        graph: chain(k),
        input: |n| (0..n).map(|i| Scalar::I32(i as i32)).collect(),
        iterations,
        qos: QosClass::Batch,
    }
}

/// The serving benchmark's arrival trace: every StreamIt benchmark as
/// its own tenant, `rounds` round-robin rounds 0.05 s apart with a 1 s
/// gap between rounds, QoS alternating by round.
fn bench_trace(rounds: usize, iterations: u64) -> Vec<(Job, f64)> {
    let suite = streambench::suite();
    let mut trace = Vec::new();
    let mut now = 0.0;
    for round in 0..rounds {
        for b in &suite {
            trace.push((
                Job {
                    tenant: b.name.to_string(),
                    graph: b.spec.flatten().expect("benchmark flattens"),
                    input: b.input,
                    iterations,
                    qos: if round % 2 == 0 {
                        QosClass::Batch
                    } else {
                        QosClass::Interactive
                    },
                },
                now,
            ));
            now += 0.05;
        }
        now += 1.0;
    }
    trace
}

/// Feeds a (time-sorted) trace to the eager server job by job.
fn serve_eager(opts: ServeOptions, trace: &[(Job, f64)]) -> (Vec<Verdict>, ServeReport) {
    let mut server = Server::new(opts);
    let verdicts = trace
        .iter()
        .map(|(job, at)| server.submit(job, *at).expect("eager job serves"))
        .collect();
    (verdicts, server.report())
}

/// Byte-level equality of two verdicts: outputs, every virtual-time
/// field bit-for-bit, cache outcome, shipped rung, slice, retries.
fn assert_verdicts_match(a: &Verdict, b: &Verdict, ctx: &str) {
    match (a, b) {
        (Verdict::Completed(x), Verdict::Completed(y)) => {
            assert_eq!(x.outputs, y.outputs, "{ctx}: outputs diverge");
            for (field, l, r) in [
                ("arrival", x.arrival_secs, y.arrival_secs),
                ("start", x.start_secs, y.start_secs),
                ("finish", x.finish_secs, y.finish_secs),
                ("latency", x.latency_secs, y.latency_secs),
                ("exec", x.exec_secs, y.exec_secs),
            ] {
                assert_eq!(l.to_bits(), r.to_bits(), "{ctx}: {field} {l} vs {r}");
            }
            assert_eq!(x.cache_hit, y.cache_hit, "{ctx}: cache outcome");
            assert_eq!(x.shipped, y.shipped, "{ctx}: shipped rung");
            assert_eq!(x.slice, y.slice, "{ctx}: slice");
            assert_eq!(x.retries, y.retries, "{ctx}: retries");
        }
        (
            Verdict::Rejected {
                retry_after_secs: l,
            },
            Verdict::Rejected {
                retry_after_secs: r,
            },
        ) => {
            assert_eq!(l.to_bits(), r.to_bits(), "{ctx}: retry hint {l} vs {r}");
        }
        _ => panic!("{ctx}: verdict kinds diverge: {a:?} vs {b:?}"),
    }
}

/// A report as JSON with the overlap observables stripped — everything
/// that must match between the eager path (which cannot overlap and
/// reports zero) and the engine.
fn report_sans_overlap(report: &ServeReport) -> serde_json::Value {
    fn strip(v: serde_json::Value) -> serde_json::Value {
        match v {
            serde_json::Value::Object(fields) => serde_json::Value::Object(
                fields
                    .into_iter()
                    .filter(|(k, _)| k != "compile_overlap_secs")
                    .map(|(k, v)| (k, strip(v)))
                    .collect(),
            ),
            serde_json::Value::Array(items) => {
                serde_json::Value::Array(items.into_iter().map(strip).collect())
            }
            other => other,
        }
    }
    strip(serde_json::from_str(&serde_json::to_string(report)).expect("report round-trips"))
}

/// The differential core: every benchmark, two rounds (cold admission
/// recuts, then repeats that hit the cache), a mild fault plan. Per-job
/// results must be byte-identical between the eager server and the
/// event engine; the reports must agree on everything except the
/// overlap the engine alone can observe — which must be positive on
/// this cold-cache multi-tenant trace.
#[test]
fn differential_all_benchmarks_byte_identical() {
    let _g = guard();
    let opts = ServeOptions {
        fault_plan: Some(FaultPlan::new(0x5EB7E).with_launch_failures(30)),
        ..ServeOptions::default()
    };
    let trace = bench_trace(2, 1);

    let before = schedule::search_invocations();
    let (eager_v, eager_r) = serve_eager(opts.clone(), &trace);
    let eager_searches = schedule::search_invocations() - before;

    let mut engine = EventEngine::new(opts).with_workers(3);
    let before = schedule::search_invocations();
    let engine_v = engine.serve_trace(&trace).unwrap();
    let engine_searches = schedule::search_invocations() - before;
    let engine_r = engine.report();

    assert_eq!(eager_v.len(), engine_v.len());
    for (i, (a, b)) in eager_v.iter().zip(&engine_v).enumerate() {
        assert_verdicts_match(a, b, &format!("job {i} ({})", trace[i].0.tenant));
    }
    assert_eq!(
        report_sans_overlap(&eager_r),
        report_sans_overlap(&engine_r),
        "reports diverge beyond the overlap observables"
    );
    assert!(
        engine_searches <= eager_searches,
        "engine ran {engine_searches} searches, eager only {eager_searches}"
    );
    assert!(
        eager_r.compile_overlap_secs == 0.0,
        "the eager path cannot overlap compilation with execution"
    );
    assert!(
        engine_r.compile_overlap_secs > 0.0,
        "cold-cache multi-tenant trace must overlap compilation with \
         other tenants' execution"
    );
    for t in &engine_r.tenants {
        assert!(t.queue_wait_p99_secs >= 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

    /// Random arrival traces: (1) two engine runs over the same trace
    /// are bit-identical — verdicts, the processed-event trace, and the
    /// recut log; (2) the engine never invokes the scheduler more often
    /// than the eager path serving the time-sorted equivalent.
    #[test]
    fn random_traces_serve_deterministically(
        picks in prop::collection::vec((0u8..3, 0u32..15), 1..8),
    ) {
        let _g = guard();
        let mut now = 0.0;
        let mut trace: Vec<(Job, f64)> = Vec::new();
        for &(tenant_sel, gap) in &picks {
            now += 0.07 * f64::from(gap + 1);
            let (name, k) = [("a", 2), ("b", 5), ("c", 9)][tenant_sel as usize];
            trace.push((tiny_job(name, k, 1), now));
        }
        // Feed the engine the trace in *reverse* input order: arrivals
        // are out of order, which the event queue must absorb.
        trace.reverse();

        let before = schedule::search_invocations();
        let mut e1 = EventEngine::new(ServeOptions::default());
        let v1 = e1.serve_trace(&trace).unwrap();
        let engine_searches = schedule::search_invocations() - before;

        let mut e2 = EventEngine::new(ServeOptions::default());
        let v2 = e2.serve_trace(&trace).unwrap();

        prop_assert_eq!(v1.len(), v2.len());
        for (i, (a, b)) in v1.iter().zip(&v2).enumerate() {
            assert_verdicts_match(a, b, &format!("same-seed run, job {i}"));
        }
        prop_assert_eq!(e1.trace(), e2.trace());
        prop_assert_eq!(e1.recut_log(), e2.recut_log());

        let mut sorted = trace.clone();
        sorted.sort_by(|a, b| a.1.total_cmp(&b.1));
        let before = schedule::search_invocations();
        let _ = serve_eager(ServeOptions::default(), &sorted);
        let eager_searches = schedule::search_invocations() - before;
        prop_assert!(
            engine_searches <= eager_searches,
            "engine {} searches vs eager {}",
            engine_searches,
            eager_searches
        );
    }
}

/// Regression: a tenant that arrives cold (cache miss, full compile
/// penalty) must not move a hot tenant's launch-finish virtual times by
/// a single bit, and the engine must report the compile window as
/// overlapped with the hot tenant's execution.
#[test]
fn cold_compile_overlaps_without_delaying_hot_tenant() {
    let _g = guard();
    // Baseline: hot floods (every 0.1 s for 5 s); cold is admitted at
    // t=0.05 and submits one *cache-hit* job (same graph, no compile
    // penalty) at t=5.03 mid-flood.
    let mut base: Vec<(Job, f64)> =
        vec![(tiny_job("hot", 2, 1), 0.0), (tiny_job("cold", 7, 1), 0.05)];
    let mut t = 1.0;
    while t <= 6.0 + 1e-9 {
        base.push((tiny_job("hot", 2, 1), t));
        t += 0.1;
    }
    // Cold warm-ups after the partition settles: the compile cache keys
    // on the slice width, so cold must have compiled this graph at its
    // *current* width for the baseline's t=5.03 job to genuinely hit.
    base.push((tiny_job("cold", 7, 1), 2.5));
    base.push((tiny_job("cold", 7, 1), 4.9));
    base.push((tiny_job("cold", 7, 1), 5.03));
    base.sort_by(|a, b| a.1.total_cmp(&b.1));
    // Test run: the identical (tenant, time) arrival sequence — so the
    // demand-driven partitioner recuts at exactly the same points — but
    // cold's t=5.03 job uses a *new* graph: a guaranteed cache miss that
    // pays the full compile penalty in the middle of the hot flood. Any
    // movement in hot's finish times is then attributable to the cold
    // compile alone.
    let mut with_cold = base.clone();
    for (job, at) in &mut with_cold {
        if job.tenant == "cold" && (*at - 5.03).abs() < 1e-9 {
            *job = tiny_job("cold", 13, 1);
        }
    }

    // The hot flood outruns its compile penalties during partition
    // warm-up; a deep queue keeps admission out of the picture so the
    // comparison is purely about virtual launch times.
    let opts = ServeOptions {
        max_queue: 64,
        ..ServeOptions::default()
    };
    let mut baseline = EventEngine::new(opts.clone());
    let base_v = baseline.serve_trace(&base).unwrap();
    let mut engine = EventEngine::new(opts);
    let cold_v = engine.serve_trace(&with_cold).unwrap();

    // Guard against the scenario going vacuous: the t=5.03 job must be a
    // genuine cache hit in the baseline and a genuine miss in the test
    // run, or the comparison proves nothing about compile overlap.
    let hit_at_503 = |trace: &[(Job, f64)], verdicts: &[Verdict]| -> bool {
        let i = trace
            .iter()
            .position(|(job, at)| job.tenant == "cold" && (*at - 5.03).abs() < 1e-9)
            .expect("trace has the t=5.03 cold job");
        match &verdicts[i] {
            Verdict::Completed(r) => r.cache_hit,
            Verdict::Rejected { .. } => panic!("t=5.03 cold job rejected"),
        }
    };
    assert!(
        hit_at_503(&base, &base_v),
        "baseline's t=5.03 cold job must hit the warm cache"
    );
    assert!(
        !hit_at_503(&with_cold, &cold_v),
        "test run's t=5.03 cold job must be a cold-cache miss"
    );

    let hot_finishes = |trace: &[(Job, f64)], verdicts: &[Verdict]| -> Vec<u64> {
        trace
            .iter()
            .zip(verdicts)
            .filter(|((job, _), _)| job.tenant == "hot")
            .map(|(_, v)| match v {
                Verdict::Completed(r) => r.finish_secs.to_bits(),
                Verdict::Rejected { .. } => panic!("hot job rejected"),
            })
            .collect()
    };
    assert_eq!(
        hot_finishes(&base, &base_v),
        hot_finishes(&with_cold, &cold_v),
        "cold tenant's compile delayed the hot tenant's launch finishes"
    );

    let base_hot_p99 = baseline
        .report()
        .tenants
        .iter()
        .find(|t| t.tenant == "hot")
        .unwrap()
        .p99_latency_secs;
    let report = engine.report();
    let hot_row = report.tenants.iter().find(|t| t.tenant == "hot").unwrap();
    assert_eq!(
        hot_row.p99_latency_secs.to_bits(),
        base_hot_p99.to_bits(),
        "hot p99 moved: {} vs solo {}",
        hot_row.p99_latency_secs,
        base_hot_p99
    );
    assert!(
        report.compile_overlap_secs > 0.0,
        "the cold compile window must overlap the hot flood's execution"
    );
    // Contrast: the baseline's t=5.03 cold job was a cache hit, so the
    // test run's extra mid-flood compile window strictly adds overlap on
    // top of whatever the shared warm-up misses already credited.
    assert!(
        report.compile_overlap_secs > baseline.report().compile_overlap_secs,
        "the mid-flood miss must add overlap beyond the warm-up's: {} vs {}",
        report.compile_overlap_secs,
        baseline.report().compile_overlap_secs
    );
}

/// The EWMA fix, end to end: submitting a trace out of order serves
/// byte-identically to submitting it sorted — the engine records demand
/// at arrival-event dequeue in true time order either way, where the
/// eager server would have clamped the early arrival to its clock (see
/// the partitioner's `recut_log` unit test for the divergence).
#[test]
fn out_of_order_submission_equals_sorted_trace() {
    let _g = guard();
    let sorted: Vec<(Job, f64)> = (0..8)
        .map(|i| {
            let (name, k) = if i % 2 == 0 { ("a", 3) } else { ("b", 11) };
            (tiny_job(name, k, 1), 0.3 * f64::from(i))
        })
        .collect();
    let mut shuffled = sorted.clone();
    shuffled.reverse();
    shuffled.swap(1, 5);

    let mut e_sorted = EventEngine::new(ServeOptions::default());
    let v_sorted = e_sorted.serve_trace(&sorted).unwrap();
    let mut e_shuffled = EventEngine::new(ServeOptions::default());
    let v_shuffled = e_shuffled.serve_trace(&shuffled).unwrap();

    assert_eq!(e_sorted.recut_log(), e_shuffled.recut_log());
    for (i, (job, at)) in sorted.iter().enumerate() {
        let j = shuffled
            .iter()
            .position(|(sj, st)| st.to_bits() == at.to_bits() && sj.tenant == job.tenant)
            .expect("same arrivals in both traces");
        assert_verdicts_match(
            &v_sorted[i],
            &v_shuffled[j],
            &format!("arrival at {at}s ({})", job.tenant),
        );
    }
}

/// The CI fault matrix, differentially: under each pinned fault kind
/// the engine and the eager server serve byte-identical results — the
/// per-artifact fault plan is cloned into both paths' run options, so
/// fault injection cannot tell them apart. Runs one kind when
/// `SWPIPE_FAULT_MATRIX` selects it, all three otherwise.
#[test]
fn fault_matrix_differential_byte_identical() {
    let _g = guard();
    let matrix = std::env::var("SWPIPE_FAULT_MATRIX").ok();
    let kinds: Vec<(&str, FaultPlan)> = vec![
        (
            "launch-failure",
            FaultPlan::new(11).with_launch_failures(100),
        ),
        ("mem-fault", FaultPlan::new(12).with_mem_corruptions(100)),
        ("watchdog", FaultPlan::new(13).with_hangs(80)),
    ];
    let mut ran = 0;
    for (name, plan) in kinds {
        if matrix.as_deref().is_some_and(|m| m != name) {
            continue;
        }
        ran += 1;
        let opts = ServeOptions {
            fault_plan: Some(plan),
            ..ServeOptions::default()
        };
        let trace: Vec<(Job, f64)> = (0..6)
            .map(|i| {
                let (t, k) = if i % 2 == 0 { ("a", 2) } else { ("b", 5) };
                (tiny_job(t, k, 2), 0.2 * f64::from(i))
            })
            .collect();
        let (eager_v, eager_r) = serve_eager(opts.clone(), &trace);
        let mut engine = EventEngine::new(opts);
        let engine_v = engine.serve_trace(&trace).unwrap();
        for (i, (a, b)) in eager_v.iter().zip(&engine_v).enumerate() {
            assert_verdicts_match(a, b, &format!("{name}, job {i}"));
        }
        assert_eq!(
            report_sans_overlap(&eager_r),
            report_sans_overlap(&engine.report()),
            "{name}: reports diverge"
        );
    }
    assert!(ran >= 1, "SWPIPE_FAULT_MATRIX selected no known fault kind");
}
