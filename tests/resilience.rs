//! Robustness tests: the degradation ladder of the resilient compilation
//! driver, and the retry-with-relaunch property — under a seedable
//! fault-injection plan (launch failures, transient memory corruptions,
//! watchdog-killed hangs, launch-overhead spikes) every benchmark's
//! output stream stays bit-identical to the fault-free run, with the
//! retry cost billed truthfully into the timing model.

use std::sync::OnceLock;
use std::time::Duration;

use gpusim::{FaultKind, FaultPlan};
use proptest::prelude::*;
use streamir::graph::{FilterSpec, StreamSpec};
use streamir::ir::{ElemTy, Expr, FnBuilder, Scalar};
use swpipe::exec::{self, CompileOptions, Compiled, RetryPolicy, RunOptions, Scheme};
use swpipe::pipeline::{
    LadderRung, PipelineOptions, ResilientPipeline, RungOutcome, StageBudgets,
};

// ---------------------------------------------------------------------
// The degradation ladder: one test per rung asserting the
// DegradationReport names that rung as the one that shipped.
// ---------------------------------------------------------------------

fn map_filter(name: &str, f: impl FnOnce(Expr) -> Expr) -> StreamSpec {
    let mut b = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
    let x = b.local(ElemTy::I32);
    b.pop_into(0, x);
    b.push(0, f(Expr::local(x)));
    StreamSpec::filter(FilterSpec::new(name, b.build().unwrap()))
}

fn ladder_graph() -> streamir::graph::FlatGraph {
    StreamSpec::pipeline(vec![
        map_filter("scale", |x| x.mul(Expr::i32(3))),
        map_filter("bias", |x| x.add(Expr::i32(7))),
        map_filter("square", |x| x.clone().mul(x)),
    ])
    .flatten()
    .unwrap()
}

fn pipeline_with(budgets: StageBudgets) -> ResilientPipeline {
    ResilientPipeline::new(PipelineOptions {
        compile: CompileOptions::small_test(),
        budgets,
    })
}

fn run_resilient(rc: &swpipe::pipeline::ResilientCompiled, iters: u64) -> Vec<Scalar> {
    let input: Vec<Scalar> = (0..exec::required_input(&rc.compiled, iters))
        .map(|i| Scalar::I32(i as i32 % 41 - 20))
        .collect();
    exec::execute(&rc.compiled, rc.scheme, iters, &input)
        .unwrap()
        .outputs
}

#[test]
fn rung_exact_ilp_ships_under_default_budgets() {
    let rc = pipeline_with(StageBudgets::default())
        .compile(&ladder_graph())
        .unwrap();
    assert_eq!(
        rc.report.shipped,
        LadderRung::ExactIlp,
        "degradation report: {}",
        rc.report
    );
    assert!(!rc.report.degraded());
    assert!(matches!(
        rc.report.shipped_attempt().unwrap().outcome,
        RungOutcome::Shipped
    ));
    assert!(rc.compiled.report.used_ilp);
    assert!(!run_resilient(&rc, 4).is_empty());
}

#[test]
fn rung_relaxed_ilp_ships_when_exact_budget_is_exhausted() {
    let rc = pipeline_with(StageBudgets {
        exact_ilp: Duration::ZERO,
        ..StageBudgets::default()
    })
    .compile(&ladder_graph())
    .unwrap();
    assert_eq!(
        rc.report.shipped,
        LadderRung::RelaxedIlp,
        "degradation report: {}",
        rc.report
    );
    assert!(rc.report.degraded());
    assert_eq!(rc.report.attempts[0].outcome, RungOutcome::SkippedBudget);
    assert!(rc.compiled.report.used_ilp);
    assert!(!run_resilient(&rc, 4).is_empty());
}

#[test]
fn rung_heuristic_ships_when_both_ilp_budgets_are_exhausted() {
    let rc = pipeline_with(StageBudgets {
        exact_ilp: Duration::ZERO,
        relaxed_ilp: Duration::ZERO,
        ..StageBudgets::default()
    })
    .compile(&ladder_graph())
    .unwrap();
    assert_eq!(
        rc.report.shipped,
        LadderRung::Heuristic,
        "degradation report: {}",
        rc.report
    );
    assert!(!rc.compiled.report.used_ilp);
    assert_eq!(rc.scheme, Scheme::Swp { coarsening: 1 });
    assert!(!run_resilient(&rc, 4).is_empty());
}

#[test]
fn rung_serial_sas_ships_when_every_scheduler_budget_is_exhausted() {
    let rc = pipeline_with(StageBudgets {
        exact_ilp: Duration::ZERO,
        relaxed_ilp: Duration::ZERO,
        heuristic: Duration::ZERO,
    })
    .compile(&ladder_graph())
    .unwrap();
    assert_eq!(
        rc.report.shipped,
        LadderRung::SerialSas,
        "degradation report: {}",
        rc.report
    );
    assert_eq!(rc.scheme, Scheme::Serial { batch: 1 });
    assert_eq!(rc.report.attempts.len(), 4);

    // The last rung must still compute the right stream: compare with
    // the CPU reference.
    let iters = 4u64;
    let graph = ladder_graph();
    let steady = streamir::sdf::solve(&graph).unwrap();
    let n_input = exec::required_input(&rc.compiled, iters);
    let cpu_per_iter = steady.input_tokens_per_iteration(&graph).max(1);
    let input: Vec<Scalar> = (0..n_input + 2 * cpu_per_iter + 64)
        .map(|i| Scalar::I32(i as i32 % 41 - 20))
        .collect();
    let gpu = exec::execute(&rc.compiled, rc.scheme, iters, &input[..n_input as usize]).unwrap();
    let cpu_init = steady.input_tokens_for_init(&graph);
    let cpu_iters = (n_input.saturating_sub(cpu_init)).div_ceil(cpu_per_iter) + 1;
    let cpu = streamir::cpu::run(
        &graph,
        &steady,
        cpu_iters,
        &input,
        &streamir::cpu::CpuCostModel::default(),
    )
    .unwrap();
    assert!(!gpu.outputs.is_empty());
    assert!(gpu.outputs.len() <= cpu.outputs.len());
    assert_eq!(gpu.outputs[..], cpu.outputs[..gpu.outputs.len()]);
}

// ---------------------------------------------------------------------
// The retry property: across the whole benchmark suite, a fault-injected
// run whose faults stay below the retry bound is bit-identical to the
// fault-free run, and the retry cost shows up in the modeled time.
// ---------------------------------------------------------------------

struct CachedBench {
    name: &'static str,
    compiled: Compiled,
    input: Vec<Scalar>,
    iters: u64,
    clean_outputs: Vec<Scalar>,
    clean_cycles: f64,
}

fn suite_cache() -> &'static [CachedBench] {
    static CACHE: OnceLock<Vec<CachedBench>> = OnceLock::new();
    CACHE.get_or_init(|| {
        streambench::suite()
            .into_iter()
            .map(|b| {
                let graph = b.spec.flatten().unwrap_or_else(|e| panic!("{}: {e}", b.name));
                let compiled = exec::compile(&graph, &CompileOptions::small_test())
                    .unwrap_or_else(|e| panic!("{}: compile: {e}", b.name));
                let iters = 4u64;
                let n_input = exec::required_input(&compiled, iters);
                let input = (b.input)(n_input as usize);
                let clean = exec::execute(&compiled, Scheme::Swp { coarsening: 1 }, iters, &input)
                    .unwrap_or_else(|e| panic!("{}: execute: {e}", b.name));
                assert_eq!(clean.retries, 0);
                CachedBench {
                    name: b.name,
                    compiled,
                    input,
                    iters,
                    clean_outputs: clean.outputs,
                    clean_cycles: clean.stats.cycles,
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// For every benchmark in the suite: inject a seeded mix of launch
    /// failures, transient memory corruptions, a watchdog-killed hang,
    /// and launch-overhead spikes. As long as no single launch exhausts
    /// the retry bound, the output stream is bit-identical to the
    /// fault-free run and the failed attempts are billed into the
    /// modeled cycles.
    #[test]
    fn faulted_runs_are_bit_identical_after_retries(seed in 1u64..1_000_000) {
        let mut total_retries = 0u64;
        for cb in suite_cache() {
            // Background fault rates, plus pinned faults on the first
            // three launch attempts so every case provably exercises a
            // launch failure, a memory fault, and a watchdog kill.
            let plan = FaultPlan::new(seed)
                .with_launch_failures(60)
                .with_mem_corruptions(40)
                .with_hangs(25)
                .with_overhead_spikes(40, 5.0)
                .at_launch(0, FaultKind::LaunchFailure)
                .at_launch(1, FaultKind::MemCorruption)
                .at_launch(2, FaultKind::Hang);
            let opts = RunOptions {
                fault_plan: Some(plan),
                retry: RetryPolicy { max_attempts: 12 },
            };
            let faulted = exec::execute_with(
                &cb.compiled,
                Scheme::Swp { coarsening: 1 },
                cb.iters,
                &cb.input,
                &opts,
            );
            let faulted = match faulted {
                Ok(run) => run,
                Err(e) => {
                    return Err(TestCaseError::Fail(
                        format!("{} (seed {seed}): {e}", cb.name),
                    ))
                }
            };
            prop_assert_eq!(
                &faulted.outputs,
                &cb.clean_outputs,
                "{} (seed {}): faulted run diverged",
                cb.name,
                seed
            );
            // The three pinned faults alone force three retries.
            prop_assert!(faulted.retries >= 3, "{}: {} retries", cb.name, faulted.retries);
            prop_assert!(faulted.stats.fault_overhead_cycles > 0.0);
            // Billing is truthful: the faulted run can only be slower.
            prop_assert!(
                faulted.stats.cycles >= cb.clean_cycles,
                "{}: faulted {} < clean {}",
                cb.name,
                faulted.stats.cycles,
                cb.clean_cycles
            );
            total_retries += faulted.retries;
        }
        prop_assert!(total_retries >= 3 * suite_cache().len() as u64);
    }
}
