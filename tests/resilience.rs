//! Robustness tests: the degradation ladder of the resilient compilation
//! driver, and the retry-with-relaunch property — under a seedable
//! fault-injection plan (launch failures, transient memory corruptions,
//! watchdog-killed hangs, launch-overhead spikes) every benchmark's
//! output stream stays bit-identical to the fault-free run, with the
//! retry cost billed truthfully into the timing model.

use std::sync::OnceLock;
use std::time::Duration;

use gpusim::{CheckpointMode, FaultKind, FaultPlan};
use proptest::prelude::*;
use streamir::graph::{FilterSpec, StreamSpec};
use streamir::ir::{ElemTy, Expr, FnBuilder, Scalar};
use swpipe::exec::{
    self, CheckpointSpec, CompileOptions, Compiled, RetryPolicy, RunOptions, Scheme,
};
use swpipe::pipeline::{
    FaultPolicy, LadderRung, PipelineOptions, ResilientPipeline, RungOutcome, StageBudgets,
};
use swpipe::profile::TIME_UNIT_CYCLES;
use swpipe::schedule::{self, SearchOptions};

// ---------------------------------------------------------------------
// The degradation ladder: one test per rung asserting the
// DegradationReport names that rung as the one that shipped.
// ---------------------------------------------------------------------

fn map_filter(name: &str, f: impl FnOnce(Expr) -> Expr) -> StreamSpec {
    let mut b = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
    let x = b.local(ElemTy::I32);
    b.pop_into(0, x);
    b.push(0, f(Expr::local(x)));
    StreamSpec::filter(FilterSpec::new(name, b.build().unwrap()))
}

fn ladder_graph() -> streamir::graph::FlatGraph {
    StreamSpec::pipeline(vec![
        map_filter("scale", |x| x.mul(Expr::i32(3))),
        map_filter("bias", |x| x.add(Expr::i32(7))),
        map_filter("square", |x| x.clone().mul(x)),
    ])
    .flatten()
    .unwrap()
}

fn pipeline_with(budgets: StageBudgets) -> ResilientPipeline {
    ResilientPipeline::new(PipelineOptions {
        compile: CompileOptions::small_test(),
        budgets,
        ..PipelineOptions::default()
    })
}

/// A pipeline with a stateful running accumulator in front — the graph
/// the checkpoint protocol actually has something to protect on.
fn stateful_graph() -> streamir::graph::FlatGraph {
    let mut b = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
    let acc = b.state(ElemTy::I32, Scalar::I32(0));
    let x = b.local(ElemTy::I32);
    b.pop_into(0, x);
    b.store_state(acc, Expr::state(acc).add(Expr::local(x)));
    b.push(0, Expr::state(acc));
    StreamSpec::pipeline(vec![
        StreamSpec::filter(FilterSpec::new("acc", b.build().unwrap())),
        map_filter("bias", |x| x.add(Expr::i32(1))),
    ])
    .flatten()
    .unwrap()
}

fn run_resilient(rc: &swpipe::pipeline::ResilientCompiled, iters: u64) -> Vec<Scalar> {
    let input: Vec<Scalar> = (0..exec::required_input(&rc.compiled, iters))
        .map(|i| Scalar::I32(i as i32 % 41 - 20))
        .collect();
    exec::execute(&rc.compiled, rc.scheme, iters, &input)
        .unwrap()
        .outputs
}

#[test]
fn rung_exact_ilp_ships_under_default_budgets() {
    let rc = pipeline_with(StageBudgets::default())
        .compile(&ladder_graph())
        .unwrap();
    assert_eq!(
        rc.report.shipped,
        LadderRung::ExactIlp,
        "degradation report: {}",
        rc.report
    );
    assert!(!rc.report.degraded());
    assert!(matches!(
        rc.report.shipped_attempt().unwrap().outcome,
        RungOutcome::Shipped
    ));
    assert!(rc.compiled.report.used_ilp);
    assert!(!run_resilient(&rc, 4).is_empty());
}

#[test]
fn rung_relaxed_ilp_ships_when_exact_budget_is_exhausted() {
    let rc = pipeline_with(StageBudgets {
        exact_ilp: Duration::ZERO,
        ..StageBudgets::default()
    })
    .compile(&ladder_graph())
    .unwrap();
    assert_eq!(
        rc.report.shipped,
        LadderRung::RelaxedIlp,
        "degradation report: {}",
        rc.report
    );
    assert!(rc.report.degraded());
    assert_eq!(rc.report.attempts[0].outcome, RungOutcome::SkippedBudget);
    assert!(rc.compiled.report.used_ilp);
    assert!(!run_resilient(&rc, 4).is_empty());
}

#[test]
fn rung_heuristic_ships_when_both_ilp_budgets_are_exhausted() {
    let rc = pipeline_with(StageBudgets {
        exact_ilp: Duration::ZERO,
        relaxed_ilp: Duration::ZERO,
        ..StageBudgets::default()
    })
    .compile(&ladder_graph())
    .unwrap();
    assert_eq!(
        rc.report.shipped,
        LadderRung::Heuristic,
        "degradation report: {}",
        rc.report
    );
    assert!(!rc.compiled.report.used_ilp);
    assert_eq!(rc.scheme, Scheme::Swp { coarsening: 1 });
    assert!(!run_resilient(&rc, 4).is_empty());
}

#[test]
fn rung_serial_sas_ships_when_every_scheduler_budget_is_exhausted() {
    let rc = pipeline_with(StageBudgets {
        exact_ilp: Duration::ZERO,
        relaxed_ilp: Duration::ZERO,
        heuristic: Duration::ZERO,
        ..StageBudgets::default()
    })
    .compile(&ladder_graph())
    .unwrap();
    assert_eq!(
        rc.report.shipped,
        LadderRung::SerialSas,
        "degradation report: {}",
        rc.report
    );
    assert_eq!(rc.scheme, Scheme::Serial { batch: 1 });
    assert_eq!(rc.report.attempts.len(), 4);

    // The last rung must still compute the right stream: compare with
    // the CPU reference.
    let iters = 4u64;
    let graph = ladder_graph();
    let steady = streamir::sdf::solve(&graph).unwrap();
    let n_input = exec::required_input(&rc.compiled, iters);
    let cpu_per_iter = steady.input_tokens_per_iteration(&graph).max(1);
    let input: Vec<Scalar> = (0..n_input + 2 * cpu_per_iter + 64)
        .map(|i| Scalar::I32(i as i32 % 41 - 20))
        .collect();
    let gpu = exec::execute(&rc.compiled, rc.scheme, iters, &input[..n_input as usize]).unwrap();
    let cpu_init = steady.input_tokens_for_init(&graph);
    let cpu_iters = (n_input.saturating_sub(cpu_init)).div_ceil(cpu_per_iter) + 1;
    let cpu = streamir::cpu::run(
        &graph,
        &steady,
        cpu_iters,
        &input,
        &streamir::cpu::CpuCostModel::default(),
    )
    .unwrap();
    assert!(!gpu.outputs.is_empty());
    assert!(gpu.outputs.len() <= cpu.outputs.len());
    assert_eq!(gpu.outputs[..], cpu.outputs[..gpu.outputs.len()]);
}

// ---------------------------------------------------------------------
// The retry property: across the whole benchmark suite, a fault-injected
// run whose faults stay below the retry bound is bit-identical to the
// fault-free run, and the retry cost shows up in the modeled time.
// ---------------------------------------------------------------------

struct CachedBench {
    name: &'static str,
    compiled: Compiled,
    input: Vec<Scalar>,
    iters: u64,
    clean_outputs: Vec<Scalar>,
    clean_cycles: f64,
}

fn suite_cache() -> &'static [CachedBench] {
    static CACHE: OnceLock<Vec<CachedBench>> = OnceLock::new();
    CACHE.get_or_init(|| {
        streambench::suite()
            .into_iter()
            .map(|b| {
                let graph = b
                    .spec
                    .flatten()
                    .unwrap_or_else(|e| panic!("{}: {e}", b.name));
                let compiled = exec::compile(&graph, &CompileOptions::small_test())
                    .unwrap_or_else(|e| panic!("{}: compile: {e}", b.name));
                let iters = 4u64;
                let n_input = exec::required_input(&compiled, iters);
                let input = (b.input)(n_input as usize);
                let clean = exec::execute(&compiled, Scheme::Swp { coarsening: 1 }, iters, &input)
                    .unwrap_or_else(|e| panic!("{}: execute: {e}", b.name));
                assert_eq!(clean.retries, 0);
                CachedBench {
                    name: b.name,
                    compiled,
                    input,
                    iters,
                    clean_outputs: clean.outputs,
                    clean_cycles: clean.stats.cycles,
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// For every benchmark in the suite: inject a seeded mix of launch
    /// failures, transient memory corruptions, a watchdog-killed hang,
    /// and launch-overhead spikes. As long as no single launch exhausts
    /// the retry bound, the output stream is bit-identical to the
    /// fault-free run and the failed attempts are billed into the
    /// modeled cycles.
    #[test]
    fn faulted_runs_are_bit_identical_after_retries(seed in 1u64..1_000_000) {
        let mut total_retries = 0u64;
        for cb in suite_cache() {
            // Background fault rates, plus pinned faults on the first
            // three launch attempts so every case provably exercises a
            // launch failure, a memory fault, and a watchdog kill.
            let plan = FaultPlan::new(seed)
                .with_launch_failures(60)
                .with_mem_corruptions(40)
                .with_hangs(25)
                .with_overhead_spikes(40, 5.0)
                .at_launch(0, FaultKind::LaunchFailure)
                .at_launch(1, FaultKind::MemCorruption)
                .at_launch(2, FaultKind::Hang);
            let opts = RunOptions {
                fault_plan: Some(plan),
                retry: RetryPolicy { max_attempts: 12 },
                checkpoint: CheckpointSpec::Auto,
                placement: None,
                checkpoint_interval: 1,
                watchdog_margin: None,
                graph_dispatch: false,
            };
            let faulted = exec::execute_with(
                &cb.compiled,
                Scheme::Swp { coarsening: 1 },
                cb.iters,
                &cb.input,
                &opts,
            );
            let faulted = match faulted {
                Ok(run) => run,
                Err(e) => {
                    return Err(TestCaseError::Fail(
                        format!("{} (seed {seed}): {e}", cb.name),
                    ))
                }
            };
            prop_assert_eq!(
                &faulted.outputs,
                &cb.clean_outputs,
                "{} (seed {}): faulted run diverged",
                cb.name,
                seed
            );
            // The three pinned faults alone force three retries.
            prop_assert!(faulted.retries >= 3, "{}: {} retries", cb.name, faulted.retries);
            prop_assert!(faulted.stats.fault_overhead_cycles > 0.0);
            // Billing is truthful: the faulted run can only be slower.
            prop_assert!(
                faulted.stats.cycles >= cb.clean_cycles,
                "{}: faulted {} < clean {}",
                cb.name,
                faulted.stats.cycles,
                cb.clean_cycles
            );
            total_retries += faulted.retries;
        }
        prop_assert!(total_retries >= 3 * suite_cache().len() as u64);
    }
}

// ---------------------------------------------------------------------
// Fault-aware scheduling: the reserve, the two policies, and the
// checkpoint protocol that backs recovery.
// ---------------------------------------------------------------------

#[test]
fn serial_sas_rung_ships_a_validated_single_sm_schedule() {
    let rc = pipeline_with(StageBudgets {
        exact_ilp: Duration::ZERO,
        relaxed_ilp: Duration::ZERO,
        heuristic: Duration::ZERO,
        ..StageBudgets::default()
    })
    .compile(&ladder_graph())
    .unwrap();
    assert_eq!(rc.report.shipped, LadderRung::SerialSas);
    let c = &rc.compiled;
    assert!(
        c.schedule.sm_of.iter().all(|&s| s == 0),
        "serial SAS must place every instance on SM 0: {:?}",
        c.schedule.sm_of
    );
    schedule::validate(&c.ig, &c.exec_cfg, &c.schedule, 1, 1)
        .expect("the serial SAS rung must ship a schedule that validates on one SM");
    let shipped = rc.report.shipped_attempt().unwrap();
    assert_eq!(shipped.nominal_ii, Some(c.report.nominal_ii));
    assert_eq!(shipped.fault_adjusted_ii, Some(c.report.nominal_ii));
}

#[test]
fn armed_checkpointing_is_never_free_for_stateful_programs() {
    let scheme = Scheme::Swp { coarsening: 1 };
    let iters = 4u64;
    // A zero-rate but *armed* fault plan: no fault ever fires, yet the
    // checkpoint protocol must still bill every state capture — this is
    // the regression test for the free-checkpoint bug.
    let armed = RunOptions {
        fault_plan: Some(FaultPlan::new(5)),
        retry: RetryPolicy::default(),
        checkpoint: CheckpointSpec::Auto,
        placement: None,
        checkpoint_interval: 1,
        watchdog_margin: None,
        graph_dispatch: false,
    };

    let stateful = exec::compile(&stateful_graph(), &CompileOptions::small_test()).unwrap();
    let input: Vec<Scalar> = (0..exec::required_input(&stateful, iters))
        .map(|i| Scalar::I32(i as i32 % 7))
        .collect();
    let clean = exec::execute(&stateful, scheme, iters, &input).unwrap();
    let run = exec::execute_with(&stateful, scheme, iters, &input, &armed).unwrap();
    assert_eq!(run.retries, 0);
    assert_eq!(run.outputs, clean.outputs);
    assert!(
        run.stats.checkpoint_cycles > 0.0,
        "state captures must be billed even when no fault fires"
    );
    assert!(run.stats.fault_overhead_cycles >= run.stats.checkpoint_cycles);
    assert!(
        run.stats.cycles > clean.stats.cycles,
        "fault_overhead_cycles must strictly increase total cycles: \
         armed {} vs clean {}",
        run.stats.cycles,
        clean.stats.cycles
    );

    // A stateless program has nothing to snapshot: arming the plan must
    // not invent checkpoint cost.
    let stateless = exec::compile(&ladder_graph(), &CompileOptions::small_test()).unwrap();
    let input: Vec<Scalar> = (0..exec::required_input(&stateless, iters))
        .map(|i| Scalar::I32(i as i32 % 7))
        .collect();
    let sl_clean = exec::execute(&stateless, scheme, iters, &input).unwrap();
    let sl_run = exec::execute_with(&stateless, scheme, iters, &input, &armed).unwrap();
    assert_eq!(sl_run.stats.checkpoint_cycles, 0.0);
    assert_eq!(sl_run.outputs, sl_clean.outputs);
    assert_eq!(sl_run.stats.cycles, sl_clean.stats.cycles);
}

#[test]
fn double_buffered_checkpoint_recovers_bit_identically_and_is_cheaper() {
    let compiled = exec::compile(&stateful_graph(), &CompileOptions::small_test()).unwrap();
    let scheme = Scheme::Swp { coarsening: 1 };
    let iters = 4u64;
    let input: Vec<Scalar> = (0..exec::required_input(&compiled, iters))
        .map(|i| Scalar::I32(i as i32 % 7))
        .collect();
    let clean = exec::execute(&compiled, scheme, iters, &input).unwrap();

    let plan = FaultPlan::new(21)
        .with_launch_failures(150)
        .with_mem_corruptions(80)
        .at_launch(0, FaultKind::LaunchFailure)
        .at_launch(1, FaultKind::MemCorruption);
    let run_with = |spec: CheckpointSpec| {
        exec::execute_with(
            &compiled,
            scheme,
            iters,
            &input,
            &RunOptions {
                fault_plan: Some(plan.clone()),
                retry: RetryPolicy { max_attempts: 16 },
                checkpoint: spec,
                placement: None,
                checkpoint_interval: 1,
                watchdog_margin: None,
                graph_dispatch: false,
            },
        )
        .unwrap()
    };
    let rt = run_with(CheckpointSpec::Force(CheckpointMode::HostRoundTrip));
    let db = run_with(CheckpointSpec::Force(CheckpointMode::DeviceDoubleBuffered));
    let auto = run_with(CheckpointSpec::Auto);

    for (name, run) in [
        ("host-round-trip", &rt),
        ("double-buffered", &db),
        ("auto", &auto),
    ] {
        assert_eq!(run.outputs, clean.outputs, "{name}: recovery diverged");
        assert!(run.retries >= 2, "{name}: pinned faults must force retries");
        assert!(run.stats.checkpoint_cycles > 0.0, "{name}");
    }
    assert_eq!(rt.checkpoint_mode, CheckpointMode::HostRoundTrip);
    assert_eq!(db.checkpoint_mode, CheckpointMode::DeviceDoubleBuffered);
    // The cost model must select the cheaper mode, and the billed cycles
    // must agree with that ranking.
    assert_eq!(auto.checkpoint_mode, CheckpointMode::DeviceDoubleBuffered);
    assert!(
        rt.stats.checkpoint_cycles > db.stats.checkpoint_cycles,
        "round-trip {} must out-price double-buffered {}",
        rt.stats.checkpoint_cycles,
        db.stats.checkpoint_cycles
    );
}

#[test]
fn tail_latency_policy_reduces_makespan_variance_under_faults() {
    let graph = ladder_graph();
    let plan = FaultPlan::new(9)
        .with_launch_failures(250)
        .at_launch(2, FaultKind::LaunchFailure)
        .at_launch(5, FaultKind::LaunchFailure);
    let compile_under = |policy: FaultPolicy| {
        ResilientPipeline::new(PipelineOptions {
            compile: CompileOptions::small_test(),
            fault_plan: Some(plan.clone()),
            policy,
            ..PipelineOptions::default()
        })
        .compile(&graph)
        .unwrap()
    };
    let tp = compile_under(FaultPolicy::Throughput);
    let tl = compile_under(FaultPolicy::TailLatency);
    assert_eq!(tp.report.policy, FaultPolicy::Throughput);
    assert_eq!(tl.report.policy, FaultPolicy::TailLatency);
    assert!(
        tl.compiled.schedule.ii > tp.compiled.schedule.ii,
        "tail-latency must reserve headroom: II {} vs {}",
        tl.compiled.schedule.ii,
        tp.compiled.schedule.ii
    );
    assert!(tl.compiled.report.fault_reserve > 0);
    assert_eq!(tp.compiled.report.fault_reserve, 0);
    // Both policies predict the same fault-adjusted effect per rung.
    let (tpa, tla) = (
        tp.report.shipped_attempt().unwrap(),
        tl.report.shipped_attempt().unwrap(),
    );
    assert!(tpa.fault_adjusted_ii.unwrap() > tpa.nominal_ii.unwrap());
    assert!(tla.fault_adjusted_ii.unwrap() > tla.nominal_ii.unwrap());

    let iters = 16u64;
    let run = |rc: &swpipe::pipeline::ResilientCompiled| {
        let input: Vec<Scalar> = (0..exec::required_input(&rc.compiled, iters))
            .map(|i| Scalar::I32(i as i32 % 41 - 20))
            .collect();
        let opts = RunOptions {
            retry: RetryPolicy { max_attempts: 16 },
            ..rc.run_options.clone()
        };
        exec::execute_with(&rc.compiled, rc.scheme, iters, &input, &opts).unwrap()
    };
    let tp_run = run(&tp);
    let tl_run = run(&tl);
    assert_eq!(
        tp_run.outputs, tl_run.outputs,
        "policies must agree on the stream"
    );
    assert!(tp_run.retries >= 2, "pinned faults must fire");
    assert!(!tp_run.launch_cycles.is_empty());
    assert_eq!(tp_run.launch_cycles.len(), tl_run.launch_cycles.len());

    // Per-launch overshoot over the *planned* launch budget (the
    // schedule's II in cycles plus the modeled launch/block overheads).
    // The tail-latency schedule plans for retries, so fault spikes eat
    // into its reserve instead of blowing past the budget — its makespan
    // variance must come out lower.
    let overshoot_variance = |rc: &swpipe::pipeline::ResilientCompiled, run: &exec::GpuRun| {
        let planned = rc.compiled.schedule.ii as f64 * TIME_UNIT_CYCLES
            + rc.compiled.timing.launch_overhead_cycles
            + f64::from(rc.compiled.device.num_sms) * rc.compiled.timing.block_overhead_cycles;
        let over: Vec<f64> = run
            .launch_cycles
            .iter()
            .map(|&c| (c - planned).max(0.0))
            .collect();
        let mean = over.iter().sum::<f64>() / over.len() as f64;
        over.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / over.len() as f64
    };
    let tp_var = overshoot_variance(&tp, &tp_run);
    let tl_var = overshoot_variance(&tl, &tl_run);
    assert!(
        tl_var < tp_var,
        "tail-latency variance {tl_var} must be below throughput variance {tp_var}"
    );
}

/// The CI fault matrix: one pinned fault kind per job, selected with the
/// `SWPIPE_FAULT_MATRIX` environment variable (all three locally).
#[test]
fn fault_matrix_pinned_kinds_recover_bit_identically() {
    let matrix = std::env::var("SWPIPE_FAULT_MATRIX").ok();
    let kinds: Vec<(&str, FaultPlan)> = vec![
        (
            "launch-failure",
            FaultPlan::new(11)
                .with_launch_failures(300)
                .at_launch(0, FaultKind::LaunchFailure),
        ),
        (
            "mem-fault",
            FaultPlan::new(12)
                .with_mem_corruptions(300)
                .at_launch(0, FaultKind::MemCorruption),
        ),
        (
            "watchdog",
            FaultPlan::new(13)
                .with_hangs(200)
                .at_launch(0, FaultKind::Hang),
        ),
    ];
    let compiled = exec::compile(&stateful_graph(), &CompileOptions::small_test()).unwrap();
    let scheme = Scheme::Swp { coarsening: 1 };
    let iters = 4u64;
    let input: Vec<Scalar> = (0..exec::required_input(&compiled, iters))
        .map(|i| Scalar::I32(i as i32 % 7))
        .collect();
    let clean = exec::execute(&compiled, scheme, iters, &input).unwrap();
    let mut ran = 0;
    for (name, plan) in kinds {
        if matrix.as_deref().is_some_and(|m| m != name) {
            continue;
        }
        ran += 1;
        let run = exec::execute_with(
            &compiled,
            scheme,
            iters,
            &input,
            &RunOptions {
                fault_plan: Some(plan),
                retry: RetryPolicy { max_attempts: 16 },
                checkpoint: CheckpointSpec::Auto,
                placement: None,
                checkpoint_interval: 1,
                watchdog_margin: None,
                graph_dispatch: false,
            },
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(run.outputs, clean.outputs, "{name}: recovery diverged");
        assert!(
            run.retries >= 1,
            "{name}: the pinned fault must force a retry"
        );
        assert!(run.stats.fault_overhead_cycles > 0.0, "{name}");
    }
    assert!(ran >= 1, "SWPIPE_FAULT_MATRIX selected no known fault kind");
}

// ---------------------------------------------------------------------
// k-launch commit intervals: the cost model's chosen interval must beat
// the every-launch baseline at low fault rates, and every interval must
// replay to the same stream.
// ---------------------------------------------------------------------

fn stateful_cache() -> &'static (Compiled, Vec<Scalar>, Vec<Scalar>) {
    static CACHE: OnceLock<(Compiled, Vec<Scalar>, Vec<Scalar>)> = OnceLock::new();
    CACHE.get_or_init(|| {
        let compiled = exec::compile(&stateful_graph(), &CompileOptions::small_test()).unwrap();
        let input: Vec<Scalar> = (0..exec::required_input(&compiled, 12))
            .map(|i| Scalar::I32(i as i32 % 7))
            .collect();
        let clean = exec::execute(&compiled, Scheme::Swp { coarsening: 1 }, 12, &input).unwrap();
        (compiled, input, clean.outputs)
    })
}

fn run_at_interval(plan: &FaultPlan, k: u32) -> exec::GpuRun {
    let (compiled, input, _) = stateful_cache();
    exec::execute_with(
        compiled,
        Scheme::Swp { coarsening: 1 },
        12,
        input,
        &RunOptions {
            fault_plan: Some(plan.clone()),
            retry: RetryPolicy { max_attempts: 12 },
            checkpoint: CheckpointSpec::Auto,
            placement: None,
            checkpoint_interval: k,
            watchdog_margin: None,
            graph_dispatch: false,
        },
    )
    .unwrap()
}

/// Acceptance criterion (c): probe the device at `k = 1`, feed the
/// *observed* fault rate and mean launch cost back into the cost model,
/// and the interval it picks must spend fewer checkpoint + replay cycles
/// than committing every launch — with a bit-identical stream.
#[test]
fn model_chosen_commit_interval_beats_k1_at_low_fault_rates() {
    let (compiled, _, clean_outputs) = stateful_cache();
    // A low background fault rate: rare enough that commits dominate
    // replays, which is exactly the regime where spacing commits wins.
    let plan = FaultPlan::new(77).with_launch_failures(8);

    let probe = run_at_interval(&plan, 1);
    assert_eq!(&probe.outputs, clean_outputs, "probe diverged");
    assert_eq!(probe.checkpoint_interval, 1);

    let observed_rate = probe.retries as f64 / probe.launches as f64;
    let mean_launch = probe.stats.productive_cycles() / probe.launches as f64;
    let words = swpipe::plan::state_words(&compiled.graph);
    assert!(words > 0, "the stateful graph must have state to protect");
    let k_star = compiled.timing.preferred_checkpoint_interval(
        probe.checkpoint_mode,
        words,
        observed_rate,
        mean_launch,
        4,
    );
    assert!(
        k_star > 1,
        "at observed rate {observed_rate} the model must space commits, chose k={k_star}"
    );

    let tuned = run_at_interval(&plan, u32::try_from(k_star).unwrap());
    assert_eq!(&tuned.outputs, clean_outputs, "k={k_star} run diverged");
    assert_eq!(u64::from(tuned.checkpoint_interval), k_star);
    let probe_cost = probe.stats.checkpoint_cycles + probe.stats.replay_cycles;
    let tuned_cost = tuned.stats.checkpoint_cycles + tuned.stats.replay_cycles;
    assert!(
        tuned_cost < probe_cost,
        "k={k_star} must be cheaper: {tuned_cost} vs k=1's {probe_cost}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Replay-from-input correctness: under a seeded fault storm, every
    /// commit interval `k ∈ 2..=4` produces the byte-identical stream the
    /// `k = 1` run (and the fault-free run) produces — replayed launches
    /// re-execute from the last committed state without double-billing
    /// the stream.
    #[test]
    fn any_commit_interval_replays_to_the_same_stream(
        seed in 1u64..1_000_000,
        k in 2u32..5,
    ) {
        let (_, _, clean_outputs) = stateful_cache();
        let plan = FaultPlan::new(seed)
            .with_launch_failures(80)
            .with_mem_corruptions(50)
            .with_hangs(25)
            .at_launch(1, FaultKind::LaunchFailure)
            .at_launch(3, FaultKind::MemCorruption);
        let base = run_at_interval(&plan, 1);
        let spaced = run_at_interval(&plan, k);
        prop_assert_eq!(&base.outputs, clean_outputs, "k=1 (seed {}) diverged", seed);
        prop_assert_eq!(
            &spaced.outputs,
            clean_outputs,
            "k={} (seed {}) diverged",
            k,
            seed
        );
        prop_assert!(spaced.retries >= 2, "pinned faults must fire (k={})", k);
        prop_assert_eq!(base.stats.replay_cycles, 0.0, "k=1 never replays");
        // A fault after the first committed launch of a window forces a
        // replay, and that replay is billed.
        if spaced.stats.replay_cycles > 0.0 {
            prop_assert!(spaced.stats.fault_overhead_cycles >= spaced.stats.replay_cycles);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// The fault-aware search: any requested reserve shows up one-for-one
    /// in the shipped II (fault-adjusted = nominal + reserve), never
    /// undercuts the fault-oblivious II, and the schedule still validates.
    #[test]
    fn fault_adjusted_ii_dominates_nominal_and_both_validate(reserve in 1u64..6) {
        let c = exec::compile(&ladder_graph(), &CompileOptions::small_test()).unwrap();
        let nominal = schedule::find(
            &c.ig,
            &c.exec_cfg,
            c.device.num_sms,
            &SearchOptions { fault_reserve: 0, ..SearchOptions::default() },
        )
        .unwrap();
        let reserved = schedule::find(
            &c.ig,
            &c.exec_cfg,
            c.device.num_sms,
            &SearchOptions { fault_reserve: reserve, ..SearchOptions::default() },
        )
        .unwrap();
        prop_assert_eq!(reserved.1.final_ii, reserved.1.nominal_ii + reserve);
        prop_assert!(reserved.1.final_ii >= nominal.1.final_ii + reserve);
        prop_assert_eq!(reserved.0.ii, reserved.1.final_ii);
        schedule::validate(&c.ig, &c.exec_cfg, &nominal.0, c.device.num_sms, 1)
            .expect("fault-oblivious schedule must validate");
        schedule::validate(&c.ig, &c.exec_cfg, &reserved.0, c.device.num_sms, 1)
            .expect("fault-reserved schedule must validate");
    }
}
