//! Integration tests for the whole-program static verifier.
//!
//! The headline property: for every benchmark in the suite and every
//! execution scheme, the verifier's static coalescing prediction matches
//! the simulator's dynamic memory counters **exactly** — access
//! instructions, device transactions, shared accesses and bank-conflict
//! passes. The static model and the simulator share the address
//! arithmetic ([`gpusim::layout::BufferBinding::addr`]) and the
//! transaction coalescer, so any divergence is a bug in one of them and
//! fails loudly here.

use swpipe::exec::{self, CompileOptions, Scheme};
use swpipe::verify::{self, Code, Severity, StaticCounters};

const SCHEMES: [Scheme; 4] = [
    Scheme::Swp { coarsening: 1 },
    Scheme::SwpNc { coarsening: 1 },
    Scheme::SwpRaw { coarsening: 1 },
    Scheme::Serial { batch: 1 },
];

/// The acceptance criterion: static coalescing predictions match the
/// simulator's dynamic transaction counts exactly on every benchmark,
/// under every scheme, and no benchmark trips an error-severity
/// diagnostic.
#[test]
fn every_benchmark_prediction_matches_the_simulator_exactly() {
    let iterations = 4u64;
    for b in streambench::suite() {
        let graph = b.spec.flatten().expect("benchmark flattens");
        let c = exec::compile(&graph, &CompileOptions::small_test())
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", b.name));
        for scheme in SCHEMES {
            let v = verify::verify(&c, scheme, iterations)
                .unwrap_or_else(|e| panic!("{}/{scheme:?}: verify failed: {e}", b.name));
            assert!(
                v.passes(),
                "{}/{scheme:?}: error-severity diagnostics: {:?}",
                b.name,
                v.diagnostics
            );
            assert!(
                v.prediction.exact,
                "{}/{scheme:?}: prediction is not exact (data-dependent control?)",
                b.name
            );

            let n_input = exec::required_input(&c, iterations);
            let input = (b.input)(n_input as usize);
            let run = exec::execute(&c, scheme, iterations, &input[..n_input as usize])
                .unwrap_or_else(|e| panic!("{}/{scheme:?}: execute failed: {e}", b.name));
            let measured = StaticCounters::of_stats(&run.stats);
            assert_eq!(
                v.prediction.counters, measured,
                "{}/{scheme:?}: static prediction diverged from the simulator",
                b.name
            );
            assert_eq!(
                v.prediction.launches, run.launches,
                "{}/{scheme:?}: launch count diverged",
                b.name
            );
        }
    }
}

/// The verifier attributes channel traffic to source sites; the per-site
/// transaction tallies are bounded by the whole-run device transaction
/// counter (state and local-array spill traffic is billed globally, not
/// to a channel access site), and every site names its filter and access.
#[test]
fn site_reports_are_consistent_with_the_transaction_total() {
    for b in streambench::suite() {
        let graph = b.spec.flatten().expect("benchmark flattens");
        let c = exec::compile(&graph, &CompileOptions::small_test()).expect("compiles");
        let v = verify::verify(&c, Scheme::SwpRaw { coarsening: 1 }, 3).expect("verifies");
        let site_txns: u64 = v
            .prediction
            .sites
            .iter()
            .map(|s| s.tally.transactions)
            .sum();
        assert!(
            site_txns <= v.prediction.counters.mem_transactions,
            "{}: per-site transaction tallies exceed the run total",
            b.name
        );
        assert!(
            !v.prediction.sites.is_empty(),
            "{}: no site reports",
            b.name
        );
        for s in &v.prediction.sites {
            assert!(
                !s.filter.is_empty(),
                "{}: site report without a filter name",
                b.name
            );
            assert!(
                !s.site.is_empty(),
                "{}: site report without an access site",
                b.name
            );
        }
    }
}

/// `SwpRaw` never stages channels in shared memory while `Swp` on the
/// small test configs stages everything it can; the predictions must
/// reflect that (raw: no channel shared traffic beyond state; swp: some).
#[test]
fn staging_shows_up_only_under_staged_schemes() {
    let b = streambench::suite()
        .into_iter()
        .find(|b| b.name == "MatrixMult")
        .expect("suite");
    let graph = b.spec.flatten().expect("flattens");
    let c = exec::compile(&graph, &CompileOptions::small_test()).expect("compiles");
    let raw = verify::verify(&c, Scheme::SwpRaw { coarsening: 1 }, 3).expect("verifies");
    let swp = verify::verify(&c, Scheme::Swp { coarsening: 1 }, 3).expect("verifies");
    assert!(swp.prediction.counters.shared_accesses > raw.prediction.counters.shared_accesses);
    assert!(raw.prediction.counters.mem_transactions > swp.prediction.counters.mem_transactions);
}

/// A deliberately corrupted schedule — two interfering filters forced
/// into the same (SM, stage) slot — is rejected with a modulo-schedule
/// hazard diagnostic (V01xx) naming both filters.
#[test]
fn corrupted_schedule_is_rejected_with_a_hazard_diagnostic() {
    let b = streambench::suite()
        .into_iter()
        .next()
        .expect("non-empty suite");
    let graph = b.spec.flatten().expect("flattens");
    let c = exec::compile(&graph, &CompileOptions::small_test()).expect("compiles");
    let mut bad = c.schedule.clone();
    // Collapse every instance onto SM 0, stage 0, offset 0: every
    // producer now fires at the same modulo time as its consumer, which
    // the dependence checker must flag.
    bad.sm_of.iter_mut().for_each(|s| *s = 0);
    bad.offset.iter_mut().for_each(|o| *o = 0);
    bad.stage.iter_mut().for_each(|st| *st = 0);
    let diags = verify::check_schedule(&c.graph, &c.ig, &c.exec_cfg, &bad, 1, 1);
    assert!(
        diags.iter().any(
            |d| matches!(d.code, Code::UnsatisfiedDependence | Code::CrossSmHazard)
                && d.severity == Severity::Error
        ),
        "collapsed schedule not rejected: {diags:?}"
    );
}
