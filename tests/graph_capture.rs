//! Integration tests for graph capture + event-triggered dispatch
//! ([`swpipe::codegen::capture_graph`], [`RunOptions::graph_dispatch`],
//! and the `V05xx` event-edge verifier pass
//! ([`swpipe::verify::check_capture`])).
//!
//! The headline properties:
//!
//! * **Differential**: every benchmark in the suite runs byte-identically
//!   under every execution scheme with graph dispatch on vs. off, with
//!   the same launch count — and the steady-state launch tax
//!   (`LaunchStats::launch_path_cycles`) drops strictly on the deep
//!   pipelines DES and FMRadio.
//! * **Soundness**: every captured graph the emitter produces passes the
//!   `V05xx` verifier pass with zero findings — the event-edge set
//!   covers exactly the modulo-schedule dependence set the verifier
//!   independently re-derives.
//! * **Fault transparency** (property-tested): under seeded fault plans
//!   with checkpoint-window replay, captured-graph runs retry and
//!   recover byte-identically to host-launched runs, and the disjoint
//!   billing decomposition holds exactly in both modes.
//! * **Adversarial**: hand-built captures with a dropped event edge or a
//!   cycle-inducing surplus edge are rejected with their precise codes
//!   (`V0501` race, `V0503` deadlock, `V0502` lost-overlap warning).

use gpusim::FaultPlan;
use proptest::prelude::*;
use streamir::graph::{FilterSpec, StreamSpec};
use streamir::ir::{ElemTy, Expr, FnBuilder, Scalar};
use swpipe::codegen::{capture_graph, EventEdge};
use swpipe::exec::{self, CompileOptions, RetryPolicy, RunOptions, Scheme};
use swpipe::verify::{self, Code, Severity};

const SCHEMES: [Scheme; 4] = [
    Scheme::Swp { coarsening: 1 },
    Scheme::SwpNc { coarsening: 1 },
    Scheme::SwpRaw { coarsening: 1 },
    Scheme::Serial { batch: 1 },
];

/// Iterations deep enough that every benchmark's modulo schedule has a
/// steady window (`iterations > max_stage` at coarsening 1), so the
/// graph-dispatched run actually replays instead of degenerating to
/// host launches. The deepest suite schedule under
/// [`CompileOptions::small_test`] is DES at 36 stages.
const ITERS: u64 = 48;

fn rate_filter(name: &str, pop: u32, push: u32, seed: i32) -> StreamSpec {
    let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
    let acc = f.local(ElemTy::I32);
    let x = f.local(ElemTy::I32);
    f.assign(acc, Expr::i32(seed));
    for _ in 0..pop {
        f.pop_into(0, x);
        f.assign(acc, Expr::local(acc).mul(Expr::i32(3)).add(Expr::local(x)));
    }
    for i in 0..push {
        f.push(0, Expr::local(acc).add(Expr::i32(i as i32 * seed)));
    }
    StreamSpec::filter(FilterSpec::new(name, f.build().expect("valid filter")))
}

fn compile_chain(rates: &[(u32, u32, i32)], num_sms: u32) -> exec::Compiled {
    let spec = StreamSpec::pipeline(
        rates
            .iter()
            .enumerate()
            .map(|(i, &(p, q, s))| rate_filter(&format!("f{i}"), p, q, s))
            .collect::<Vec<_>>(),
    );
    let graph = spec.flatten().expect("chain flattens");
    let opts = CompileOptions {
        device: gpusim::DeviceConfig {
            num_sms,
            ..gpusim::DeviceConfig::small_test()
        },
        ..CompileOptions::small_test()
    };
    exec::compile(&graph, &opts).expect("chain compiles")
}

fn graph_opts() -> RunOptions {
    RunOptions {
        graph_dispatch: true,
        ..RunOptions::default()
    }
}

/// Differential sweep: all 8 benchmarks × 4 schemes byte-identical with
/// graph dispatch on vs. off, same launch count, honest billing in both
/// modes — and the launch path strictly cheaper on DES and FMRadio
/// under every SWP-family scheme.
#[test]
fn every_benchmark_is_byte_identical_with_graph_dispatch_on_vs_off() {
    for b in streambench::suite() {
        let graph = b.spec.flatten().expect("benchmark flattens");
        let c = exec::compile(&graph, &CompileOptions::small_test())
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", b.name));
        for scheme in SCHEMES {
            let input: Vec<Scalar> = (b.input)(exec::required_input(&c, ITERS) as usize);
            let host = exec::execute_with(&c, scheme, ITERS, &input, &RunOptions::default())
                .unwrap_or_else(|e| panic!("{}/{scheme:?}: host run failed: {e}", b.name));
            let replayed = exec::execute_with(&c, scheme, ITERS, &input, &graph_opts())
                .unwrap_or_else(|e| panic!("{}/{scheme:?}: graph run failed: {e}", b.name));

            assert_eq!(
                host.outputs, replayed.outputs,
                "{}/{scheme:?}: graph dispatch changed the output stream",
                b.name
            );
            assert_eq!(
                host.launches, replayed.launches,
                "{}/{scheme:?}: graph dispatch changed the launch count",
                b.name
            );
            host.stats.assert_billing();
            replayed.stats.assert_billing();

            if matches!(scheme, Scheme::Serial { .. }) {
                // The serial scheme has no fixed steady-state graph:
                // the flag must be inert, not merely harmless.
                assert_eq!(
                    replayed.stats.graph_captures, 0,
                    "{}: serial captured",
                    b.name
                );
                assert_eq!(
                    replayed.stats.graph_replays, 0,
                    "{}: serial replayed",
                    b.name
                );
                assert_eq!(
                    host.stats.launch_path_cycles, replayed.stats.launch_path_cycles,
                    "{}: serial launch path moved",
                    b.name
                );
                continue;
            }

            assert!(
                replayed.stats.launch_path_cycles <= host.stats.launch_path_cycles,
                "{}/{scheme:?}: graph dispatch raised the launch tax",
                b.name
            );
            // The acceptance benchmarks: deep pipelines must replay and
            // must pay measurably less launch tax, not equal-or-less.
            if b.name == "DES" || b.name == "FMRadio" {
                assert!(
                    replayed.stats.graph_replays > 0,
                    "{}/{scheme:?}: no steady rounds replayed (ITERS too shallow?)",
                    b.name
                );
                assert_eq!(replayed.stats.graph_captures, 1, "{}/{scheme:?}", b.name);
                assert!(
                    replayed.stats.launch_path_cycles < host.stats.launch_path_cycles,
                    "{}/{scheme:?}: launch_cycles must drop strictly ({} vs {})",
                    b.name,
                    replayed.stats.launch_path_cycles,
                    host.stats.launch_path_cycles,
                );
            }
        }
    }
}

/// Soundness sweep: the capture the emitter produces for every
/// benchmark passes the `V05xx` pass with zero findings — no missing
/// edge (race), no surplus edge (lost overlap), no lag-0 cycle.
#[test]
fn every_emitted_capture_passes_the_event_edge_verifier() {
    for b in streambench::suite() {
        let graph = b.spec.flatten().expect("benchmark flattens");
        let c = exec::compile(&graph, &CompileOptions::small_test())
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", b.name));
        let cap = capture_graph(&c.ig, &c.schedule, 1);
        let diags = verify::check_capture(&c.graph, &c.ig, &c.schedule, 1, &cap);
        assert!(
            diags.is_empty(),
            "{}: emitted capture has findings: {:?}",
            b.name,
            diags
        );
    }
}

/// Adversarial fixture: dropping any event edge from an emitted capture
/// is a race, rejected with `V0501` at error severity and a message
/// naming the un-gated consumer.
#[test]
fn dropped_event_edge_is_rejected_as_a_race() {
    let c = compile_chain(&[(1, 2, 1), (2, 3, 2), (3, 1, -3)], 4);
    let cap = capture_graph(&c.ig, &c.schedule, 1);
    assert!(
        verify::check_capture(&c.graph, &c.ig, &c.schedule, 1, &cap).is_empty(),
        "emitted capture must start clean"
    );
    assert!(
        !cap.edges.is_empty(),
        "fixture needs at least one cross-SM event edge to drop"
    );

    for drop_idx in 0..cap.edges.len() {
        let mut broken = cap.clone();
        let dropped = broken.edges.remove(drop_idx);
        let diags = verify::check_capture(&c.graph, &c.ig, &c.schedule, 1, &broken);
        let race = diags
            .iter()
            .find(|d| d.code == Code::MissingEventEdge)
            .unwrap_or_else(|| panic!("dropping {dropped:?} raised no V0501: {diags:?}"));
        assert_eq!(race.code.severity(), Severity::Error, "{race}");
        // Snapshot the diagnostic surface: family code and the race
        // vocabulary must be stable — serving rejections and CI logs
        // key on them.
        let header = race.to_string();
        assert!(header.contains("[V0501]"), "{header}");
        assert!(
            header.contains("error"),
            "races must render at error severity: {header}"
        );
    }
}

/// Adversarial fixture: a surplus edge pair that closes a lag-0 cycle
/// deadlocks the capture on first replay — rejected with `V0503` (and
/// the surplus edges themselves flagged `V0502` as lost overlap).
#[test]
fn cycle_inducing_surplus_edges_are_rejected_as_a_deadlock() {
    let c = compile_chain(&[(1, 2, 1), (2, 3, 2), (3, 1, -3)], 4);
    let mut cap = capture_graph(&c.ig, &c.schedule, 1);
    let n = cap.sm_of.len() as u32;
    assert!(n >= 2, "fixture needs two nodes");
    // Tie the first and last instance into a lag-0 wait-for loop.
    cap.edges.push(EventEdge {
        producer: 0,
        consumer: n - 1,
        lag: 0,
    });
    cap.edges.push(EventEdge {
        producer: n - 1,
        consumer: 0,
        lag: 0,
    });
    let diags = verify::check_capture(&c.graph, &c.ig, &c.schedule, 1, &cap);
    let cycle = diags
        .iter()
        .find(|d| d.code == Code::EventEdgeCycle)
        .unwrap_or_else(|| panic!("no V0503 deadlock finding: {diags:?}"));
    assert_eq!(cycle.code.severity(), Severity::Error, "{cycle}");
    let header = cycle.to_string();
    assert!(header.contains("[V0503]"), "{header}");
    assert!(
        diags.iter().any(|d| d.code == Code::SurplusEventEdge),
        "the injected edges must also be flagged as surplus: {diags:?}"
    );
    assert!(
        diags
            .iter()
            .filter(|d| d.code == Code::SurplusEventEdge)
            .all(|d| d.code.severity() == Severity::Warning),
        "surplus edges are lost overlap, not races: {diags:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Random stream graphs under seeded fault plans: captured-graph
    /// runs with retries and checkpoint-window replay produce output
    /// byte-identical to host-launched runs of the same plan, retry the
    /// same number of times, and keep the disjoint billing
    /// decomposition exact in both modes.
    #[test]
    fn faulted_runs_recover_byte_identically_across_dispatch_modes(
        rates in prop::collection::vec((1u32..4, 1u32..4, -3i32..4), 1..4),
        seed in 1u64..0x7FFF_FFFF,
        k in 1u32..4,
        scheme_idx in 0usize..SCHEMES.len(),
    ) {
        let c = compile_chain(&rates, 4);
        let scheme = SCHEMES[scheme_idx];
        let iterations = 12u64;
        let n_input = exec::required_input(&c, iterations);
        let input: Vec<Scalar> = (0..n_input).map(|i| Scalar::I32(i as i32 % 13)).collect();

        let clean = exec::execute_with(&c, scheme, iterations, &input, &RunOptions::default())
            .expect("clean run");

        let plan = FaultPlan::new(seed)
            .with_launch_failures(120)
            .with_mem_corruptions(80)
            .with_hangs(40);
        let mut runs = Vec::new();
        for graph_dispatch in [false, true] {
            let opts = RunOptions {
                fault_plan: Some(plan.clone()),
                retry: RetryPolicy { max_attempts: 12 },
                checkpoint_interval: k,
                graph_dispatch,
                ..RunOptions::default()
            };
            let run = exec::execute_with(&c, scheme, iterations, &input, &opts)
                .expect("faulted run survives under the raised retry budget");
            prop_assert_eq!(
                &run.outputs, &clean.outputs,
                "dispatch {} must recover to the clean output", graph_dispatch
            );
            run.stats.assert_billing();
            runs.push(run);
        }
        // Fault injection is keyed on attempt ordinals and both modes
        // issue the identical run sequence, so the draws — and hence
        // the retries — must agree exactly.
        prop_assert_eq!(runs[0].retries, runs[1].retries);
        prop_assert_eq!(runs[0].launches, runs[1].launches);
        prop_assert!(
            runs[1].stats.launch_path_cycles <= runs[0].stats.launch_path_cycles
        );
    }
}
