//! Chaos and adaptive-resilience acceptance tests for the serving
//! engine, locking down ISSUE 6's three criteria:
//!
//! * **(a) invisibility** — on a fault-free trace, an engine with the
//!   adaptive controller enabled is byte- and cycle-identical to one
//!   without it: same verdict bits, same event trace, same report;
//! * **(b) adaptation pays** — under a sustained hang storm, the
//!   adaptive policy (retry-rate EWMA switching the noisy tenant from
//!   Throughput to TailLatency) achieves a lower queue-wait p99 than
//!   the frozen static policy, with byte-identical outputs;
//! * **brownout** — a mid-trace device brownout recuts every tenant
//!   into the shrunk SM range without changing a single output byte;
//! * **determinism** — same seed, same storm: verdicts, the
//!   controller's decision log, and the engine's event trace replay
//!   byte-for-byte (property-tested across seeds).
//!
//! Criterion (c) — the model-chosen commit interval beating `k = 1` at
//! low fault rates — lives in `tests/resilience.rs` next to the
//! executor-level checkpoint tests.

use gpusim::FaultPlan;
use proptest::prelude::*;
use streamir::graph::{FilterSpec, FlatGraph, StreamSpec};
use streamir::ir::{ElemTy, Expr, FnBuilder, Scalar};
use swpipe::serve::{
    BrownoutSpec, ChaosStorm, EventEngine, Job, QosClass, ResilienceOptions, ServeOptions,
    TenantReport, Verdict,
};

fn map_filter(name: &str, k: i32) -> StreamSpec {
    let mut b = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
    let x = b.local(ElemTy::I32);
    b.pop_into(0, x);
    b.push(0, Expr::local(x).mul(Expr::i32(k)));
    StreamSpec::filter(FilterSpec::new(name, b.build().unwrap()))
}

fn chain(k: i32) -> FlatGraph {
    StreamSpec::pipeline(vec![map_filter("f", k), map_filter("g", k + 1)])
        .flatten()
        .unwrap()
}

fn tiny_job(tenant: &str, k: i32, iterations: u64) -> Job {
    Job {
        tenant: tenant.to_string(),
        graph: chain(k),
        input: |n| (0..n).map(|i| Scalar::I32(i as i32)).collect(),
        iterations,
        qos: QosClass::Batch,
    }
}

/// A small two-tenant trace of stateless tiny jobs.
fn tiny_trace(jobs: usize, iterations: u64) -> Vec<(Job, f64)> {
    (0..jobs)
        .map(|i| {
            let (name, k) = if i % 2 == 0 { ("a", 3) } else { ("b", 7) };
            (tiny_job(name, k, iterations), 0.2 * i as f64)
        })
        .collect()
}

/// Byte-level equality of two verdicts (same contract as the
/// serve_engine differential suite: every virtual-time field compared
/// bit-for-bit).
fn assert_verdicts_match(a: &Verdict, b: &Verdict, ctx: &str) {
    match (a, b) {
        (Verdict::Completed(x), Verdict::Completed(y)) => {
            assert_eq!(x.outputs, y.outputs, "{ctx}: outputs diverge");
            for (field, l, r) in [
                ("arrival", x.arrival_secs, y.arrival_secs),
                ("start", x.start_secs, y.start_secs),
                ("finish", x.finish_secs, y.finish_secs),
                ("latency", x.latency_secs, y.latency_secs),
                ("exec", x.exec_secs, y.exec_secs),
            ] {
                assert_eq!(l.to_bits(), r.to_bits(), "{ctx}: {field} {l} vs {r}");
            }
            assert_eq!(x.cache_hit, y.cache_hit, "{ctx}: cache outcome");
            assert_eq!(x.shipped, y.shipped, "{ctx}: shipped rung");
            assert_eq!(x.slice, y.slice, "{ctx}: slice");
            assert_eq!(x.retries, y.retries, "{ctx}: retries");
        }
        (
            Verdict::Rejected {
                retry_after_secs: l,
            },
            Verdict::Rejected {
                retry_after_secs: r,
            },
        ) => {
            assert_eq!(l.to_bits(), r.to_bits(), "{ctx}: retry hint {l} vs {r}");
        }
        _ => panic!("{ctx}: verdict kinds diverge: {a:?} vs {b:?}"),
    }
}

/// Criterion (a): with no faults the controller observes a zero retry
/// rate, never crosses any band, and must be invisible — an engine with
/// the controller enabled serves a fault-free trace byte- and
/// cycle-identically to one with it disabled: same verdict bits, same
/// processed-event trace, same serialized report, and an empty decision
/// log.
#[test]
fn fault_free_controller_is_byte_and_cycle_invisible() {
    let trace = tiny_trace(8, 2);
    let mut plain = EventEngine::new(ServeOptions::default());
    let v_plain = plain.serve_trace(&trace).unwrap();

    let opts = ServeOptions {
        resilience: ResilienceOptions {
            enabled: true,
            ..ResilienceOptions::default()
        },
        ..ServeOptions::default()
    };
    let mut adaptive = EventEngine::new(opts);
    let v_adaptive = adaptive.serve_trace(&trace).unwrap();

    assert_eq!(v_plain.len(), v_adaptive.len());
    for (i, (a, b)) in v_plain.iter().zip(&v_adaptive).enumerate() {
        assert_verdicts_match(a, b, &format!("fault-free job {i}"));
    }
    assert_eq!(
        plain.trace(),
        adaptive.trace(),
        "the controller must not reorder or add events on a fault-free trace"
    );
    assert!(
        adaptive.decisions().is_empty(),
        "zero retries must produce zero decisions: {:?}",
        adaptive.decisions()
    );
    assert_eq!(
        serde_json::to_string(&plain.report()),
        serde_json::to_string(&adaptive.report()),
        "fault-free reports must serialize identically"
    );
}

fn tenant_row<'a>(rows: &'a [TenantReport], name: &str) -> &'a TenantReport {
    rows.iter()
        .find(|t| t.tenant == name)
        .unwrap_or_else(|| panic!("no report row for tenant {name}"))
}

/// Criterion (b): one noisy Throughput tenant under a sustained hang
/// storm, served twice over the identical backlogged trace — once with
/// policy switching live (upper band 0.05) and once frozen (band at
/// infinity). The adaptive run must actually switch, must deliver
/// byte-identical outputs (policies trade time, never correctness), and
/// must beat the static run's queue-wait p99: TailLatency's fault
/// reserve inflates the II, the schedule needs fewer stages, each job
/// runs fewer launches, and fewer launches draw fewer multi-second
/// watchdog hangs.
#[test]
fn adaptive_policy_beats_static_under_hang_storm() {
    let bench = streambench::by_name("FMRadio").expect("suite has FMRadio");
    let trace: Vec<(Job, f64)> = (0..12)
        .map(|i| {
            (
                Job {
                    tenant: "noisy".to_string(),
                    graph: bench.spec.flatten().expect("benchmark flattens"),
                    input: bench.input,
                    iterations: 6,
                    qos: QosClass::Batch,
                },
                0.01 * i as f64,
            )
        })
        .collect();
    let storm = FaultPlan::new(0xBAD_5EED)
        .with_hangs(120)
        .with_launch_failures(40);
    let opts_with_band = |band: f64| ServeOptions {
        fault_plan: Some(storm.clone()),
        resilience: ResilienceOptions {
            enabled: true,
            dwell_jobs: 1,
            retry_max_attempts: Some(10),
            ..ResilienceOptions::default()
        },
        retry_warn_threshold: band,
        max_queue: 64,
        ..ServeOptions::default()
    };

    let mut adaptive = EventEngine::new(opts_with_band(0.05));
    let v_adaptive = adaptive.serve_trace(&trace).unwrap();
    let mut static_policy = EventEngine::new(opts_with_band(f64::INFINITY));
    let v_static = static_policy.serve_trace(&trace).unwrap();

    // Same storm, same trace: every job completes either way and the
    // outputs must not depend on which policy served them.
    for (i, (a, s)) in v_adaptive.iter().zip(&v_static).enumerate() {
        match (a, s) {
            (Verdict::Completed(x), Verdict::Completed(y)) => {
                assert_eq!(x.outputs, y.outputs, "job {i}: outputs diverge");
            }
            _ => panic!("job {i}: a storm the budget survives must complete"),
        }
    }

    let a_report = adaptive.report();
    let s_report = static_policy.report();
    let a_row = tenant_row(&a_report.tenants, "noisy");
    let s_row = tenant_row(&s_report.tenants, "noisy");
    assert!(
        a_row.policy_switches >= 1,
        "the hang storm must push the EWMA over the band: {:?}",
        adaptive.decisions()
    );
    assert_eq!(
        s_row.policy_switches, 0,
        "an infinite band must freeze the policy"
    );
    assert!(
        a_row.queue_wait_p99_secs < s_row.queue_wait_p99_secs,
        "adaptive queue-wait p99 {} must beat static {}",
        a_row.queue_wait_p99_secs,
        s_row.queue_wait_p99_secs
    );
}

/// A mid-trace brownout shrinks the device out from under a served
/// trace: the partitioner recuts every tenant into the surviving SM
/// range, the recut is logged, every post-brownout slice fits the
/// shrunk device — and not one output byte changes relative to the
/// full-width run (slice width trades time, never values).
#[test]
fn brownout_recuts_without_changing_outputs() {
    let trace = tiny_trace(10, 2);
    let mut full = EventEngine::new(ServeOptions::default());
    let v_full = full.serve_trace(&trace).unwrap();

    let brownout = BrownoutSpec {
        at_secs: 0.9,
        total_sms: 6,
    };
    let mut browned = EventEngine::new(ServeOptions::default()).with_brownout(brownout);
    let v_browned = browned.serve_trace(&trace).unwrap();

    assert_eq!(v_full.len(), v_browned.len());
    let mut compared = 0;
    for (i, (f, b)) in v_full.iter().zip(&v_browned).enumerate() {
        if let (Verdict::Completed(x), Verdict::Completed(y)) = (f, b) {
            assert_eq!(x.outputs, y.outputs, "job {i}: brownout changed outputs");
            compared += 1;
        }
    }
    assert!(compared > 0, "no completed jobs to compare");

    assert!(
        browned.recut_log().len() > full.recut_log().len(),
        "the brownout must force an extra recut: {} vs {}",
        browned.recut_log().len(),
        full.recut_log().len()
    );
    // Every job that *arrived* after the brownout ran inside the
    // shrunk range.  (Jobs arriving earlier may have been sliced at
    // dispatch time, before the recut, even if they started later.)
    for v in &v_browned {
        if let Verdict::Completed(r) = v {
            if r.arrival_secs >= brownout.at_secs {
                assert!(
                    r.slice.base_sm + r.slice.num_sms <= brownout.total_sms,
                    "slice [{}+{}] escapes the {}-SM brownout",
                    r.slice.base_sm,
                    r.slice.num_sms,
                    brownout.total_sms
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Same seed, same storm, same decisions: serving the same trace
    /// twice under one [`ChaosStorm`] reproduces the verdict bits, the
    /// controller's decision log, and the processed-event trace
    /// byte-for-byte — the replay invariant the chaos soak harness
    /// leans on, property-tested across storm seeds.
    #[test]
    fn same_seed_storms_replay_decision_logs_exactly(seed in 1u64..1_000_000) {
        let storm = ChaosStorm {
            seed,
            horizon_attempts: 12,
            ..ChaosStorm::default()
        };
        let opts = ServeOptions {
            fault_plan: Some(storm.fault_plan()),
            resilience: ResilienceOptions {
                enabled: true,
                dwell_jobs: 1,
                retry_max_attempts: Some(8),
                ..ResilienceOptions::default()
            },
            retry_warn_threshold: 0.05,
            ..ServeOptions::default()
        };
        let trace = tiny_trace(6, 2);

        let mut e1 = EventEngine::new(opts.clone());
        let v1 = e1.serve_trace(&trace).unwrap();
        let mut e2 = EventEngine::new(opts);
        let v2 = e2.serve_trace(&trace).unwrap();

        prop_assert_eq!(v1.len(), v2.len());
        for (i, (a, b)) in v1.iter().zip(&v2).enumerate() {
            assert_verdicts_match(a, b, &format!("seed {seed}, job {i}"));
        }
        prop_assert_eq!(e1.decisions(), e2.decisions());
        prop_assert_eq!(e1.trace(), e2.trace());
    }
}
