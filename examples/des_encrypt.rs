//! DES on the simulated GPU: compile the 51-filter DES stream graph,
//! encrypt a message under the classic FIPS-46 test key, verify every
//! block against an independent reference implementation, and report the
//! modeled throughput of the software-pipelined schedule.
//!
//! Run with: `cargo run --release --example des_encrypt`

use streambench::des;
use streamir::ir::Scalar;
use swpipe::exec::{self, CompileOptions, Scheme};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = des::spec().flatten()?;
    println!(
        "DES stream graph: {} filters in a pure pipeline",
        graph.len()
    );

    let compiled = exec::compile(&graph, &CompileOptions::small_test())?;
    println!(
        "compiled: II = {}, {} pipeline stages, {} threads/block",
        compiled.schedule.ii,
        compiled.schedule.max_stage() + 1,
        compiled.exec_cfg.threads_per_block,
    );

    // One steady iteration encrypts `threads` blocks in parallel; run 8.
    let iterations = 8;
    let n_input = exec::required_input(&compiled, iterations);
    let message: Vec<Scalar> = (0..n_input)
        .map(|i| Scalar::I32((0x0123_4567u32.wrapping_mul(i as u32 + 1) ^ 0x89AB) as i32))
        .collect();

    let run = exec::execute(
        &compiled,
        Scheme::Swp { coarsening: 4 },
        iterations,
        &message,
    )?;

    // Verify every ciphertext block against the independent reference.
    let plain: Vec<i32> = message.iter().map(|s| s.as_i32()).collect();
    let expect = des::reference(&plain[..run.outputs.len()]);
    let got: Vec<i32> = run.outputs.iter().map(|s| s.as_i32()).collect();
    assert_eq!(got, expect, "GPU ciphertext must match the reference DES");

    let blocks = run.outputs.len() / 2;
    println!(
        "encrypted {blocks} blocks ({} bytes) — all verified against the reference",
        blocks * 8
    );
    println!(
        "modeled device time {:.3e}s  ({:.1} MB/s at the modeled clock)",
        run.time_secs,
        blocks as f64 * 8.0 / run.time_secs / 1e6
    );
    println!(
        "classic test vector: E(0x0123456789ABCDEF) = {:#018X}",
        des::encrypt_block(0x0123_4567_89AB_CDEF)
    );
    Ok(())
}
