//! The profiling and configuration-selection phases in isolation
//! (Figures 6 and 7 of the paper): profile every filter of the FM radio
//! over the register × thread grid, print the measured table, and show
//! which execution configuration Algorithm 7 picks and why.
//!
//! Run with: `cargo run --release --example profiling`

use gpusim::{DeviceConfig, TimingModel};
use streamir::graph::NodeId;
use swpipe::{config, profile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = streambench::fmradio::spec().flatten()?;
    println!(
        "FMRadio: {} nodes, {} peeking filters",
        graph.len(),
        graph.peeking_filter_count()
    );

    let opts = profile::ProfileOptions {
        reg_limits: vec![16, 32],
        thread_counts: vec![64, 128, 256],
        ..profile::ProfileOptions::paper()
    };
    let device = DeviceConfig::gts512();
    let table = profile::profile(&graph, &opts, &device, &TimingModel::gts512())?;

    // Print the grid for a few representative filters.
    println!("\nper-instance cycles (x = infeasible: register file exhausted):");
    print!("{:>14}", "filter");
    for &r in &table.reg_limits {
        for &t in &table.thread_counts {
            print!("{:>12}", format!("r{r}/t{t}"));
        }
    }
    println!();
    for (i, node) in graph.nodes().iter().enumerate().take(6) {
        print!("{:>14}", node.name);
        for ri in 0..table.reg_limits.len() {
            for ti in 0..table.thread_counts.len() {
                match table.cycles(NodeId(i as u32), ri, ti) {
                    Some(c) => print!("{:>12.0}", c),
                    None => print!("{:>12}", "x"),
                }
            }
        }
        println!();
    }

    // Algorithm 7: pick the work-normalised best pair.
    let sel = config::select(&graph, &table)?;
    println!("\ncandidate (regs, numThreads) pairs and normalised II:");
    for ((r, t), norm) in &sel.candidates {
        match norm {
            Some(v) => println!("  ({r:>2}, {t:>3}) -> {v:.3}"),
            None => println!("  ({r:>2}, {t:>3}) -> infeasible"),
        }
    }
    println!(
        "\nselected: {} registers/thread, {} threads/block (normalised II {:.3})",
        sel.exec.regs_per_thread, sel.exec.threads_per_block, sel.normalized_ii
    );
    let histogram = {
        let mut counts = std::collections::BTreeMap::new();
        for &t in &sel.exec.threads {
            *counts.entry(t).or_insert(0u32) += 1;
        }
        counts
    };
    println!("per-filter thread choices: {histogram:?}");
    Ok(())
}
