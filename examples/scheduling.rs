//! Scheduling deep-dive: formulate the paper's Section III ILP for a
//! small multirate graph (Figure 4's rates), solve it exactly with the
//! built-in branch-and-bound, and compare against the decomposed
//! heuristic — printing the full schedule (SM assignment, offsets,
//! stages) both ways.
//!
//! Run with: `cargo run --release --example scheduling`

use std::time::Duration;

use streamir::graph::{FilterSpec, StreamSpec};
use streamir::ir::{ElemTy, Expr, FnBuilder};
use swpipe::instances::{self, ExecConfig};
use swpipe::schedule::{self, SchedulerKind, SearchOptions};

fn rate_filter(name: &str, pop: u32, push: u32) -> StreamSpec {
    let mut f = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
    let x = f.local(ElemTy::I32);
    for _ in 0..pop {
        f.pop_into(0, x);
    }
    for _ in 0..push {
        f.push(0, Expr::local(x).add(Expr::i32(1)));
    }
    StreamSpec::filter(FilterSpec::new(name, f.build().expect("valid")))
}

fn print_schedule(
    tag: &str,
    ig: &swpipe::instances::InstanceGraph,
    s: &swpipe::schedule::Schedule,
) {
    println!("{tag}: II = {}, stages = {}", s.ii, s.max_stage() + 1);
    for (i, &(v, k)) in ig.list.iter().enumerate() {
        println!(
            "  instance ({:?}, {k}): SM {}, offset {}, stage {}",
            v, s.sm_of[i], s.offset[i], s.stage[i]
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 4's multirate pair: A pushes 2/firing, B pops 3/firing, so
    // one steady iteration fires A three times and B twice.
    let graph =
        StreamSpec::pipeline(vec![rate_filter("A", 1, 2), rate_filter("B", 3, 1)]).flatten()?;
    let config = ExecConfig {
        regs_per_thread: 16,
        threads_per_block: 4,
        threads: vec![4, 4],
        delay: vec![7, 11],
    };
    let ig = instances::build(&graph, &config)?;
    println!(
        "instances: {:?} (k = {:?}), {} dependences",
        ig.list,
        ig.reps,
        ig.deps.len()
    );
    println!(
        "ResMII on 2 SMs = {}, RecMII = {}",
        ig.res_mii(&config, 2),
        ig.rec_mii(&config)
    );

    let (ilp_sched, report) = schedule::find(
        &ig,
        &config,
        2,
        &SearchOptions {
            scheduler: SchedulerKind::Ilp,
            ilp_budget: Duration::from_secs(20),
            ..SearchOptions::default()
        },
    )?;
    println!(
        "\nILP search: {} candidate II(s), {} vars / {} constraints, {:.2}s",
        report.attempts,
        report.ilp_vars,
        report.ilp_constraints,
        report.solve_time.as_secs_f64()
    );
    print_schedule("exact ILP", &ig, &ilp_sched);

    let (heur_sched, _) = schedule::find(
        &ig,
        &config,
        2,
        &SearchOptions {
            scheduler: SchedulerKind::Heuristic,
            ..SearchOptions::default()
        },
    )?;
    println!();
    print_schedule("heuristic", &ig, &heur_sched);

    // Both satisfy the same constraint system.
    schedule::validate(&ig, &config, &ilp_sched, 2, 16)?;
    schedule::validate(&ig, &config, &heur_sched, 2, 16)?;
    println!("\nboth schedules pass the independent validator");
    Ok(())
}
