//! Stateful filters on the GPU — the paper's stated future work, working
//! end-to-end: an AGC (automatic gain control) stage carries state across
//! firings, so it is serialized on one SM while the stateless stages
//! around it stay massively data-parallel and software-pipelined.
//!
//! Run with: `cargo run --release --example stateful_radio`

use streamir::cpu::{self, CpuCostModel};
use streamir::graph::{FilterSpec, StreamSpec};
use streamir::ir::{ElemTy, Expr, FnBuilder, Scalar};
use swpipe::exec::{self, CompileOptions, Scheme};

/// A stateless gain stage.
fn gain(name: &str, g: f32) -> StreamSpec {
    let mut f = FnBuilder::new(&[ElemTy::F32], &[ElemTy::F32]);
    let x = f.local(ElemTy::F32);
    f.pop_into(0, x);
    f.push(0, Expr::local(x).mul(Expr::f32(g)));
    StreamSpec::filter(FilterSpec::new(name, f.build().expect("valid")))
}

/// The stateful AGC: tracks a running envelope `env = 0.9·env + 0.1·|x|`
/// and normalises each sample by it.
fn agc() -> StreamSpec {
    let mut f = FnBuilder::new(&[ElemTy::F32], &[ElemTy::F32]);
    let env = f.state(ElemTy::F32, Scalar::F32(1.0));
    let x = f.local(ElemTy::F32);
    f.pop_into(0, x);
    f.store_state(
        env,
        Expr::state(env).mul(Expr::f32(0.9)).add(
            Expr::local(x)
                .unary(streamir::ir::UnOp::Abs)
                .mul(Expr::f32(0.1)),
        ),
    );
    f.push(0, Expr::local(x).div(Expr::state(env).max(Expr::f32(0.05))));
    StreamSpec::filter(FilterSpec::new("agc", f.build().expect("valid")))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = StreamSpec::pipeline(vec![gain("pre", 0.5), agc(), gain("post", 2.0)]);
    let graph = spec.flatten()?;
    let compiled = exec::compile(&graph, &CompileOptions::small_test())?;

    println!("pipeline: pre → AGC (stateful) → post");
    for (i, node) in graph.nodes().iter().enumerate() {
        println!(
            "  {:>5}: {} thread(s){}",
            node.name,
            compiled.exec_cfg.threads[i],
            if node.work.is_stateful() {
                "  [stateful: serialized, device-resident state]"
            } else {
                ""
            }
        );
    }
    println!(
        "II = {} (RecMII from the state chain: {})",
        compiled.schedule.ii,
        compiled.ig.rec_mii(&compiled.exec_cfg)
    );

    let iters = 8;
    let n_input = exec::required_input(&compiled, iters);
    let input: Vec<Scalar> = (0..n_input + 64)
        .map(|i| Scalar::F32(((i % 37) as f32 - 18.0) * 0.3))
        .collect();
    let run = exec::execute(
        &compiled,
        Scheme::Swp { coarsening: 1 },
        iters,
        &input[..n_input as usize],
    )?;

    // Verify against the CPU reference.
    let steady = streamir::sdf::solve(&graph)?;
    let per = steady.input_tokens_per_iteration(&graph).max(1);
    let cpu = cpu::run(
        &graph,
        &steady,
        n_input.div_ceil(per) + 1,
        &input,
        &CpuCostModel::default(),
    )?;
    assert_eq!(run.outputs[..], cpu.outputs[..run.outputs.len()]);
    println!(
        "verified {} output samples bit-exact against the CPU reference",
        run.outputs.len()
    );
    println!(
        "coarsening is rejected for stateful graphs: {:?}",
        exec::execute(
            &compiled,
            Scheme::Swp { coarsening: 4 },
            8,
            &input[..n_input as usize]
        )
        .err()
        .map(|e| e.to_string())
    );
    Ok(())
}
