//! Quickstart: build a small stream program, compile it with the
//! software-pipelining toolchain, execute it on the simulated GPU, and
//! check the output against the CPU reference — the whole paper pipeline
//! in one page.
//!
//! Run with: `cargo run --release --example quickstart`

use streamir::cpu::{self, CpuCostModel};
use streamir::graph::{FilterSpec, SplitterKind, StreamSpec};
use streamir::ir::{ElemTy, Expr, FnBuilder, Scalar};
use swpipe::exec::{self, CompileOptions, Scheme};

fn map_filter(name: &str, f: impl FnOnce(Expr) -> Expr) -> StreamSpec {
    let mut b = FnBuilder::new(&[ElemTy::I32], &[ElemTy::I32]);
    let x = b.local(ElemTy::I32);
    b.pop_into(0, x);
    b.push(0, f(Expr::local(x)));
    StreamSpec::filter(FilterSpec::new(name, b.build().expect("valid filter")))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A stream program: scale, then a split-join that squares evens and
    //    negates odds, then a final offset.
    let spec = StreamSpec::pipeline(vec![
        map_filter("scale", |x| x.mul(Expr::i32(3))),
        StreamSpec::split_join(
            SplitterKind::RoundRobin(vec![1, 1]),
            vec![
                map_filter("square", |x| x.clone().mul(x)),
                map_filter("negate", |x| x.neg()),
            ],
            vec![1, 1],
        ),
        map_filter("offset", |x| x.add(Expr::i32(7))),
    ]);
    let graph = spec.flatten()?;
    println!(
        "graph: {} nodes ({} user filters)",
        graph.len(),
        spec.filter_count()
    );

    // 2. Compile: profile on the simulated GPU, select the execution
    //    configuration, software-pipeline across SMs (Figure 5).
    let compiled = exec::compile(&graph, &CompileOptions::small_test())?;
    println!(
        "selected {} regs/thread, {} threads/block; II = {} (lower bound {}), {} stages",
        compiled.exec_cfg.regs_per_thread,
        compiled.exec_cfg.threads_per_block,
        compiled.schedule.ii,
        compiled.report.lower_bound,
        compiled.schedule.max_stage() + 1,
    );

    // 3. Execute 8 steady iterations on the simulated GPU.
    let iterations = 8;
    let n_input = exec::required_input(&compiled, iterations);
    let input: Vec<Scalar> = (0..n_input).map(|i| Scalar::I32(i as i32 % 100)).collect();
    let gpu_run = exec::execute(&compiled, Scheme::Swp { coarsening: 4 }, iterations, &input)?;

    // 4. Check against the single-threaded CPU reference.
    let steady = streamir::sdf::solve(&graph)?;
    let cpu_iters = (n_input / steady.input_tokens_per_iteration(&graph)).max(1);
    let cpu_run = cpu::run(&graph, &steady, cpu_iters, &input, &CpuCostModel::default())?;
    assert_eq!(
        gpu_run.outputs[..],
        cpu_run.outputs[..gpu_run.outputs.len()],
        "GPU and CPU must agree bit-for-bit"
    );
    println!(
        "verified {} output tokens bit-exact against the CPU reference",
        gpu_run.outputs.len()
    );
    println!(
        "modeled GPU time {:.3e}s over {} launches ({} device transactions)",
        gpu_run.time_secs, gpu_run.launches, gpu_run.stats.mem_transactions
    );
    Ok(())
}
